package pipeline

import (
	"fmt"
	"time"

	"ffsva/internal/detect"
	"ffsva/internal/device"
	"ffsva/internal/filters"
	"ffsva/internal/frame"
	"ffsva/internal/trace"
)

// Start launches every stage process on the configured clock. The caller
// then runs the clock (clk.Run()) and finally collects Report().
func (s *System) Start() {
	clk := s.cfg.Clock
	s.liveMu.Lock()
	s.start = clk.Now()
	s.started = true
	s.liveSNM += len(s.streams)
	s.tyLive = len(s.tyNotifies)
	s.liveMu.Unlock()
	for _, st := range s.streams {
		s.launch(st)
	}
	for w := range s.tyNotifies {
		w := w
		clk.Go(fmt.Sprintf("t-yolo[%d]", w), func() { s.tyWorker(w) })
	}
	clk.Go("ref", s.refStage)
	if s.cfg.HeartbeatEvery > 0 {
		clk.Go("heartbeat", s.heartbeat)
	}
}

// heartbeat stamps liveness every HeartbeatEvery until the instance
// crashes or finishes. A crashed instance's stamp freezes at the crash
// time — the staleness a cluster manager's failure detection keys on.
func (s *System) heartbeat() {
	clk := s.cfg.Clock
	for {
		s.recMu.Lock()
		if s.crashed {
			s.recMu.Unlock()
			return
		}
		s.lastBeat = clk.Now()
		s.recMu.Unlock()
		if s.Finished() {
			return
		}
		clk.Sleep(s.cfg.HeartbeatEvery)
	}
}

// Crash marks the instance dead at the current clock time: ingest halts
// at the next frame boundary, every in-flight frame drains to DropError
// without consuming device time, and the heartbeat freezes so a cluster
// manager can detect the death. The frame ledger survives the crash —
// Report still satisfies conservation — and StopStream still sizes
// continuations correctly, which together let cluster recovery account
// for and re-forward every stream of the dead instance.
func (s *System) Crash() {
	s.recMu.Lock()
	s.crashed = true
	s.recMu.Unlock()
}

// Crashed reports whether Crash was called.
func (s *System) Crashed() bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.crashed
}

// Heartbeat returns the clock time of the instance's last liveness
// stamp. Zero until the heartbeat process (Config.HeartbeatEvery) first
// runs.
func (s *System) Heartbeat() time.Duration {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.lastBeat
}

// launch spawns the per-stream stage processes.
func (s *System) launch(st *streamState) {
	clk := s.cfg.Clock
	clk.Go(fmt.Sprintf("prefetch[%d]", st.spec.ID), func() { s.prefetch(st) })
	if st.spill != nil {
		clk.Go(fmt.Sprintf("spill[%d]", st.spec.ID), func() { s.spillDrainer(st) })
	}
	clk.Go(fmt.Sprintf("sdd[%d]", st.spec.ID), func() { s.sddStage(st) })
	clk.Go(fmt.Sprintf("snm[%d]", st.spec.ID), func() { s.snmStage(st) })
}

// spillDrainer re-injects spilled frames into the capture buffer in
// order as room appears (§5.5 burst remedy), then closes the buffer.
func (s *System) spillDrainer(st *streamState) {
	for {
		f, ok := st.spill.Read()
		if !ok {
			break
		}
		if !st.sddQ.Put(f) {
			s.finish(st, f, DropClosed, -1)
		}
		st.spill.Delivered()
	}
	st.sddQ.Close()
}

// Hold keeps the shared stages alive while no stream is running, so a
// manager process can add streams later (cluster admission). Every Hold
// must be paired with a Release.
func (s *System) Hold() {
	s.liveMu.Lock()
	s.liveSNM++
	s.liveMu.Unlock()
}

// Release undoes a Hold; when the last hold and stream finish, the shared
// stages shut down.
func (s *System) Release() { s.snmDone() }

// AddStream admits a new stream into a started system. It must be called
// from a clock process (or before Start via New's specs).
func (s *System) AddStream(spec StreamSpec) {
	st := s.newStream(spec)
	s.liveMu.Lock()
	if s.liveSNM <= 0 {
		s.liveMu.Unlock()
		panic("pipeline: AddStream after shared stages shut down (missing Hold?)")
	}
	s.liveSNM++
	s.liveMu.Unlock()
	s.streamsMu.Lock()
	s.streams = append(s.streams, st)
	s.streamsMu.Unlock()
	s.launch(st)
}

// StopStream halts a stream's ingest at the next frame boundary and
// returns how many frames remain unprocessed, so a cluster manager can
// re-forward the remainder to another instance. The second result is the
// stream's source, which the continuation must reuse.
func (s *System) StopStream(id int) (remaining int64, src FrameSource, nextSeq int64, ok bool) {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	for _, st := range s.streams {
		if st.spec.ID == id && !st.stop {
			s.recMu.Lock()
			st.stop = true
			remaining = int64(st.spec.Frames) - st.ingested
			nextSeq = st.spec.SeqBase + st.ingested
			s.recMu.Unlock()
			return remaining, st.spec.Source, nextSeq, true
		}
	}
	return 0, nil, 0, false
}

// CancelAll halts every stream's ingest at its next frame boundary and
// marks the run cancelled. Frames already in flight drain through the
// cascade normally, so the conservation invariant (every ingested frame
// gets a final disposition) holds and the eventual Report is a valid
// partial result. Safe to call more than once; later AddStream streams
// are not affected (cluster migration decides their fate separately).
func (s *System) CancelAll() {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	s.recMu.Lock()
	for _, st := range s.streams {
		st.stop = true
	}
	s.cancelled = true
	s.recMu.Unlock()
}

// Cancelled reports whether CancelAll was called.
func (s *System) Cancelled() bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.cancelled
}

// snapshotStreams copies the stream list for lock-free iteration.
func (s *System) snapshotStreams() []*streamState {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	return append([]*streamState(nil), s.streams...)
}

// lookupStream finds the stream fragment owning the given source
// sequence number. A migrated continuation reuses its predecessor's id
// with a later SeqBase, so in-flight frames of the stopped fragment must
// still resolve to the fragment whose record window covers their seq —
// otherwise their records would be silently lost.
func (s *System) lookupStream(id int, seq int64) *streamState {
	s.streamsMu.Lock()
	defer s.streamsMu.Unlock()
	var fallback *streamState
	for i := len(s.streams) - 1; i >= 0; i-- {
		st := s.streams[i]
		if st.spec.ID != id {
			continue
		}
		if idx := seq - st.spec.SeqBase; idx >= 0 && idx < int64(len(st.records)) {
			return st
		}
		if fallback == nil {
			fallback = st
		}
	}
	return fallback
}

// Run is a convenience for sole owners of the clock: Start, run the world
// to completion, and report.
func (s *System) Run() *Report {
	s.Start()
	s.cfg.Clock.Run()
	return s.Report()
}

// prefetch decodes frames from the source and feeds the SDD queue,
// pacing at capture rate in online mode.
func (s *System) prefetch(st *streamState) {
	clk := s.cfg.Clock
	if st.spec.StartAt > 0 {
		clk.Sleep(st.spec.StartAt)
	}
	interval := time.Second / time.Duration(st.spec.FPS)
	epoch := clk.Now()
	fsrc, fallible := st.spec.Source.(FallibleSource)
	for i := 0; i < st.spec.Frames; i++ {
		target := epoch + time.Duration(i)*interval
		if s.cfg.Mode == Online {
			if now := clk.Now(); now < target {
				clk.Sleep(target - now)
			}
		}
		// A stopped (migrated/cancelled) or crashed stream must not pay
		// decode for a frame it will never ingest; the authoritative
		// check below re-runs atomically with the pull.
		s.recMu.Lock()
		halted := st.stop || s.crashed
		s.recMu.Unlock()
		if halted {
			break
		}
		// Decode, retrying transient failures within the budget. Every
		// attempt — failed or successful — pays the decode service time.
		decStart := clk.Now()
		lost := false
		if fallible {
			tries := 0
			for fsrc.DecodeFails() {
				s.faultCtr.Inc()
				if s.cfg.ChargeCosts {
					s.cpu.Use(device.ModelDecode, 1, s.cfg.Costs)
				}
				tries++
				if tries > s.cfg.DecodeRetryBudget {
					lost = true
					break
				}
				s.retryCtr.Inc()
			}
			// One instant per faulted frame (not per attempt), so decode
			// faults land on the timeline and arm flight-recorder dumps
			// like every other fault class.
			if tries > 0 {
				s.cfg.Tracer.Instant(fmt.Sprintf("fault decode stream %d", st.spec.ID), "fault", s.cfg.Instance, clk.Now())
			}
		}
		if !lost && s.cfg.ChargeCosts {
			s.cpu.Use(device.ModelDecode, 1, s.cfg.Costs)
		}
		// The stop check must be atomic with pulling the frame: StopStream
		// reads ingested to size the continuation, so once it returns this
		// prefetcher may not take another frame — a frame ingested after a
		// stale pre-decode check would be owned by both fragments and the
		// continuation's last frame would fall outside its record window.
		s.recMu.Lock()
		if st.stop || s.crashed {
			s.recMu.Unlock()
			break // stream re-forwarded elsewhere (or instance dead)
		}
		if lost {
			// Permanent decode failure: consume the frame's slot so the
			// source stays seq-aligned, and ledger it as DropError.
			seq := st.spec.SeqBase + st.ingested
			fsrc.Discard()
			if i == 0 {
				st.firstCap = clk.Now()
			}
			st.ingested++
			s.recMu.Unlock()
			s.ingestCtr.Inc()
			s.finishLost(st, seq, DropError)
			continue
		}
		f := st.spec.Source.Next()
		f.StreamID = st.spec.ID
		f.Captured = clk.Now()
		if tr := s.cfg.Tracer; tr != nil {
			ft := tr.StartFrame(st.spec.ID, f.Seq, s.cfg.Instance, decStart)
			ft.AddSpan(trace.KDecode, decStart, f.Captured, "cpu", 0)
			f.Trace = ft
		}
		if i == 0 {
			st.firstCap = f.Captured
		}
		st.ingested++
		s.recMu.Unlock()
		s.ingestCtr.Inc()
		late := clk.Now() - target
		if st.spill != nil {
			// Spill keeps ingest non-blocking: while spilled frames are
			// owed, new ones must also spill to preserve order.
			if st.spill.Pending() > 0 || !st.sddQ.TryPut(f) {
				f.Trace.BeginWait(trace.KWaitSpill, clk.Now())
				st.spill.Write(f)
			}
		} else if s.cfg.Mode == Online && s.cfg.ShedAfter > 0 && late > s.cfg.ShedAfter {
			// Load-shedding bypass: the stream has already fallen past the
			// threshold, so a full capture buffer sheds the frame instead
			// of stalling ingest — capture holds its FPS while the
			// back-end is degraded (the paper's ≥30 FPS ingest guarantee).
			if !st.sddQ.TryPut(f) {
				s.shedCtr.Inc()
				s.finish(st, f, DropShed, -1)
			}
		} else if !st.sddQ.Put(f) {
			s.finish(st, f, DropClosed, -1)
		}
		if s.cfg.Mode == Online {
			// Lateness against the capture schedule: sustained growth
			// means the stream is no longer analyzed in real time.
			lag := clk.Now() - target
			s.recMu.Lock()
			st.curLag = lag
			if lag > st.ingestLag {
				st.ingestLag = lag
			}
			s.recMu.Unlock()
		}
	}
	// Ingest is over: clear the lateness signal so a finished stream's
	// stale curLag cannot keep the instance looking overloaded forever.
	s.recMu.Lock()
	st.ingestDone = true
	st.curLag = 0
	s.recMu.Unlock()
	if st.spill != nil {
		st.spill.Close() // the drainer closes sddQ after re-injection
	} else {
		st.sddQ.Close()
	}
}

// sddStage runs the stream's difference detector on the CPU.
func (s *System) sddStage(st *streamState) {
	clk := s.cfg.Clock
	for {
		f, ok := st.sddQ.Get()
		if !ok {
			break
		}
		if s.Crashed() {
			// Dead instance: drain without consuming device time.
			s.finish(st, f, DropError, -1)
			continue
		}
		if f.Corrupt {
			// Damaged payload: reject before feeding the cascade garbage.
			s.faultCtr.Inc()
			s.cfg.Tracer.Instant("fault corrupt-frame", "fault", s.cfg.Instance, clk.Now())
			s.finish(st, f, DropError, -1)
			continue
		}
		if s.cfg.DisableSDD {
			if !st.snmQ.Put(f) {
				s.finish(st, f, DropClosed, -1)
			}
			continue
		}
		sp := f.Trace.StartSpan(trace.KSDD, "cpu", clk.Now())
		if s.cfg.ChargeCosts {
			s.cpu.UseResize(device.ModelSDD, 1, s.cfg.Costs)
			s.cpu.Use(device.ModelSDD, 1, s.cfg.Costs)
		}
		if st.spec.SDD.Process(f) == filters.Drop {
			sp.EndDrop(clk.Now())
			s.finish(st, f, DropSDD, -1)
		} else {
			sp.End(clk.Now())
			if !st.snmQ.Put(f) {
				s.finish(st, f, DropClosed, -1)
			}
		}
	}
	st.snmQ.Close()
}

// snmStage runs the stream's specialized network on GPU-0 in batches
// formed according to the batch policy.
func (s *System) snmStage(st *streamState) {
	clk := s.cfg.Clock
	for {
		var batch []*frame.Frame
		switch s.cfg.BatchPolicy {
		case BatchDynamic:
			batch = st.snmQ.GetUpTo(s.cfg.BatchSize)
		default: // BatchStatic, BatchFeedback: wait for a full batch
			batch = st.snmQ.GetExact(s.cfg.BatchSize)
		}
		if len(batch) == 0 {
			break
		}
		if s.Crashed() {
			for _, f := range batch {
				s.finish(st, f, DropError, -1)
			}
			continue
		}
		s.snmBatch.Observe(len(batch))
		if s.cfg.DisableSNM {
			for _, f := range batch {
				if st.tyQ.Put(f) {
					s.tyNotifyFor(st).add(1)
				} else {
					s.finish(st, f, DropClosed, -1)
				}
			}
			continue
		}
		// Batch assembly (CPU resize of all members) and batched GPU
		// inference are timed separately so the trace splits
		// "stalled on batchmates" from "being computed".
		t0 := clk.Now()
		if s.cfg.ChargeCosts {
			s.cpu.UseResize(device.ModelSNM, len(batch), s.cfg.Costs)
		}
		t1 := clk.Now()
		if s.cfg.ChargeCosts {
			s.snmGPU(st).Use(device.ModelSNM, len(batch), s.cfg.Costs)
		}
		// One multi-sample forward for the whole batch: the network
		// computes each sample with the same per-sample loops, so the
		// verdicts match per-frame Process calls exactly while paying
		// the im2col and dispatch overhead once.
		verdicts := st.spec.SNM.ProcessBatch(batch)
		t2 := clk.Now()
		gpuName := s.snmGPU(st).Name
		for i, f := range batch {
			f.Trace.AddSpan(trace.KSNMAssemble, t0, t1, "cpu", len(batch))
			f.Trace.AddSpan(trace.KSNMInfer, t1, t2, gpuName, len(batch))
			if verdicts[i] == filters.Pass {
				// Blocks at the T-YOLO depth threshold: feedback.
				if st.tyQ.Put(f) {
					s.tyNotifyFor(st).add(1)
				} else {
					s.finish(st, f, DropClosed, -1)
				}
			} else {
				f.Trace.MarkDrop()
				s.finish(st, f, DropSNM, -1)
			}
		}
	}
	st.tyQ.Close()
	s.snmDone()
}

// snmGPU returns the filter GPU a stream's SNM is pinned to.
func (s *System) snmGPU(st *streamState) *device.Device {
	return s.filterGPUs[st.spec.ID%len(s.filterGPUs)]
}

// tyNotifyFor returns the wake signal of the T-YOLO worker that owns a
// stream's partition.
func (s *System) tyNotifyFor(st *streamState) *notify {
	return s.tyNotifies[st.spec.ID%len(s.tyNotifies)]
}

// snmDone closes the T-YOLO wake signals once the last SNM stage exits.
func (s *System) snmDone() {
	s.liveMu.Lock()
	s.liveSNM--
	last := s.liveSNM == 0
	s.liveMu.Unlock()
	if last {
		for _, n := range s.tyNotifies {
			n.close()
		}
	}
}

// tyDone closes the reference queue once the last T-YOLO worker exits.
func (s *System) tyDone() {
	s.liveMu.Lock()
	s.tyLive--
	last := s.tyLive == 0
	s.liveMu.Unlock()
	if last {
		s.refQ.Close()
	}
}

// tyWorker is one shared T-YOLO worker (one per filter GPU; the paper's
// design has exactly one): it cycles over the streams of its partition,
// draining at most NumTYolo frames from each per cycle (inter-stream
// load balancing, §4.3.1) and forwarding qualifying frames to the
// reference queue.
func (s *System) tyWorker(w int) {
	clk := s.cfg.Clock
	k := len(s.tyNotifies)
	note := s.tyNotifies[w]
	for note.wait() {
		for _, st := range s.snapshotStreams() {
			if st.spec.ID%k != w {
				continue
			}
			var batch []*frame.Frame
			for len(batch) < s.cfg.NumTYolo {
				f, ok := st.tyQ.TryGet()
				if !ok {
					break
				}
				batch = append(batch, f)
			}
			if len(batch) == 0 {
				continue
			}
			note.sub(len(batch))
			if s.Crashed() {
				for _, f := range batch {
					s.finish(st, f, DropError, -1)
				}
				continue
			}
			t0 := clk.Now()
			if s.cfg.ChargeCosts {
				s.cpu.UseResize(device.ModelTYolo, len(batch), s.cfg.Costs)
				tyGPU := s.filterGPUs[w]
				if s.cfg.PerStreamTYolo {
					// Each stream has its own T-YOLO: loading it evicts
					// the previous stream's copy, so every batch pays
					// the (inflated) activation charge on the GPU.
					tyGPU.Invalidate()
				}
				tyGPU.Use(device.ModelTYolo, len(batch), s.cfg.Costs)
			}
			gpuName := s.filterGPUs[w].Name
			// Consecutive spans over the batch: the first member absorbs
			// the batched device charge, the rest their own Process time.
			prev := t0
			for _, f := range batch {
				var verdict filters.Verdict
				if s.cfg.Consolidate {
					// Consolidation needs T-YOLO's candidate boxes
					// downstream: attach them to passing frames.
					var cands []frame.Candidate
					verdict, cands = st.spec.TYolo.ProcessCands(f)
					if verdict == filters.Pass {
						f.Cands = cands
					}
				} else {
					verdict = st.spec.TYolo.Process(f)
				}
				now := clk.Now()
				f.Trace.AddSpan(trace.KTYoloInfer, prev, now, gpuName, len(batch))
				prev = now
				if verdict == filters.Pass {
					if !s.refQ.Put(f) {
						f.Trace.MarkDrop()
						s.finish(st, f, DropClosed, -1)
					}
				} else {
					f.Trace.MarkDrop()
					s.finish(st, f, DropTYolo, -1)
				}
			}
			s.tyMeter.Mark(clk.Now(), int64(len(batch)))
		}
	}
	s.tyDone()
}

// refStage is the reference model on its dedicated GPU-1: per-frame
// full-frame inference by default, the crop-and-pack consolidator
// (consolidate.go) under Config.Consolidate.
func (s *System) refStage() {
	if s.cfg.Consolidate {
		s.refConsolidatedLoop()
	} else {
		s.refLoop()
	}
	s.liveMu.Lock()
	s.end = s.cfg.Clock.Now()
	s.finished = true
	s.liveMu.Unlock()
}

// refLoop is the classic per-frame reference path.
func (s *System) refLoop() {
	clk := s.cfg.Clock
	for {
		f, ok := s.refQ.Get()
		if !ok {
			break
		}
		if s.Crashed() {
			if st := s.lookupStream(f.StreamID, f.Seq); st != nil {
				s.finish(st, f, DropError, -1)
			} else {
				s.finishOrphan(f)
			}
			continue
		}
		// Resolve the stream before charging the device: an orphan costs
		// no reference inference.
		st := s.lookupStream(f.StreamID, f.Seq)
		if st == nil {
			s.finishOrphan(f)
			continue
		}
		sp := f.Trace.StartSpan(trace.KRef, s.gpu1.Name, clk.Now())
		if s.cfg.ChargeCosts {
			s.gpu1.Use(device.ModelRef, 1, s.cfg.Costs)
		}
		dets := s.cfg.Ref.Detect(f)
		sp.End(clk.Now())
		count := detect.Count(dets, st.spec.Target, s.cfg.RefConf)
		s.refServed.Inc()
		s.finishCounts(st, f, Detected, count, count)
	}
}

// finishOrphan retires a frame that reached the reference stage with no
// owning stream (its stream was retired or migrated with frames in
// flight). There is no record slot to write, but the pooled pixel plane
// must still be released and the trace must still reach the tracer's
// terminal — skipping either leaks both for every orphan. The orphan
// counter is the ledger entry that lets Report's conservation check
// explain the hole.
func (s *System) finishOrphan(f *frame.Frame) {
	s.orphanCtr.Inc()
	if ft := f.Trace; ft != nil {
		f.Trace = nil
		s.cfg.Tracer.Finish(ft, "orphaned", true, s.cfg.Clock.Now())
	}
	f.Release()
}

// Finished reports whether the reference stage has exited, i.e. no
// further frame can be decided. The periodic monitor uses it to stop.
func (s *System) Finished() bool {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return s.finished
}

// finish records a frame's final disposition.
func (s *System) finish(st *streamState, f *frame.Frame, d Disposition, refCount int) {
	s.finishCounts(st, f, d, refCount, -1)
}

// finishCounts is finish with the reference tier's second tally: under
// consolidation refCount is the truncation-adjusted count over the
// packed crops and refFull the full-frame count, so accuracy accounting
// can measure what cropping cost.
func (s *System) finishCounts(st *streamState, f *frame.Frame, d Disposition, refCount, refFull int) {
	rec := Record{
		Done:         true,
		Seq:          f.Seq,
		Disposition:  d,
		Captured:     f.Captured,
		Decided:      s.cfg.Clock.Now(),
		TruthCount:   -1,
		RefCount:     refCount,
		RefFullCount: refFull,
	}
	if f.Truth != nil {
		rec.TruthCount = f.Truth.TargetCount(st.spec.Target)
		rec.SceneID = f.Truth.SceneID
		for _, b := range f.Truth.Boxes {
			if b.Class == st.spec.Target && b.Visible > rec.MaxVisible {
				rec.MaxVisible = b.Visible
			}
		}
	}
	s.latency.Observe(rec.Decided - rec.Captured)
	s.dispCtr.With(d.String()).Inc()
	if ft := f.Trace; ft != nil {
		// finish is also the trace record's terminal point: detach it
		// before the frame is released so retention owns it exclusively.
		f.Trace = nil
		s.cfg.Tracer.Finish(ft, d.String(), d == DropError, rec.Decided)
	}
	s.recMu.Lock()
	if idx := f.Seq - st.spec.SeqBase; idx >= 0 && idx < int64(len(st.records)) {
		st.records[idx] = rec
	}
	if rec.Decided > st.lastDone {
		st.lastDone = rec.Decided
	}
	st.counts[d]++
	s.recMu.Unlock()
	// finish is the single terminal point of a frame's journey, so this
	// is the one place its pixel plane can go back to the frame pool
	// (a no-op for frames not built by frame.NewPooled).
	f.Release()
}

// finishLost records a frame that was consumed from the source but never
// delivered (decode failure past the retry budget): there is no frame
// object to route or release, but the slot must still appear in the
// ledger or the conservation invariant would see a hole.
func (s *System) finishLost(st *streamState, seq int64, d Disposition) {
	now := s.cfg.Clock.Now()
	rec := Record{
		Done: true, Seq: seq, Disposition: d,
		Captured: now, Decided: now,
		TruthCount: -1, RefCount: -1, RefFullCount: -1,
	}
	s.dispCtr.With(d.String()).Inc()
	s.recMu.Lock()
	if idx := seq - st.spec.SeqBase; idx >= 0 && idx < int64(len(st.records)) {
		st.records[idx] = rec
	}
	if now > st.lastDone {
		st.lastDone = now
	}
	st.counts[d]++
	s.recMu.Unlock()
}

// TYoloRate reports the shared T-YOLO stage's recent processing rate in
// FPS over the meter window; the cluster manager compares it against the
// paper's 140 FPS spare-capacity signal.
func (s *System) TYoloRate() float64 {
	return s.tyMeter.Rate(s.cfg.Clock.Now())
}

// WorstBacklog reports the deepest ingest (capture-buffer) queue across
// streams, in frames. Backlog divided by FPS is how many seconds the
// instance is running behind; a sustained multi-second backlog is the
// overload signal a cluster manager re-forwards on.
func (s *System) WorstBacklog() int {
	worst := 0
	for _, st := range s.snapshotStreams() {
		n := st.sddQ.Len()
		if st.spill != nil {
			n += st.spill.Pending()
		}
		if n > worst {
			worst = n
		}
	}
	return worst
}

// Overloaded reports whether any SNM or T-YOLO queue sits at its depth
// threshold — the paper's instance-overload signal (§4.3.1). Because
// queues legitimately touch their thresholds in bursts, managers should
// combine this with WorstLag for a sustained signal.
func (s *System) Overloaded() bool {
	for _, st := range s.snapshotStreams() {
		if st.snmQ.Full() || st.tyQ.Full() {
			return true
		}
	}
	return false
}

// WorstLag reports the worst current ingest lateness across the
// instance's online streams: the definitive "no longer real-time"
// signal a cluster manager acts on. Streams that have finished ingesting
// (or were stopped) are excluded — a completed stream's stale lateness
// must not keep the instance looking overloaded forever.
func (s *System) WorstLag() time.Duration {
	var worst time.Duration
	streams := s.snapshotStreams()
	s.recMu.Lock()
	defer s.recMu.Unlock()
	for _, st := range streams {
		if !st.stop && !st.ingestDone && st.curLag > worst {
			worst = st.curLag
		}
	}
	return worst
}
