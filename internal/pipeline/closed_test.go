package pipeline

// White-box tests for the closed-queue frame accounting. They live inside
// the package because no public API severs a pipeline edge mid-run: the
// failure mode under test (a stage's Put returning false after a
// downstream Close) is reached here by closing a stream's SNM queue out
// from under its SDD stage.

import (
	"testing"
	"time"

	"ffsva/internal/detect"
	"ffsva/internal/filters"
	"ffsva/internal/frame"
	"ffsva/internal/imgproc"
	"ffsva/internal/vclock"
	"ffsva/internal/vidgen"
)

// rawSpec builds a StreamSpec without the lab trainer (importing lab here
// would cycle): pass-through SDD/SNM via the ablation switches, a real
// T-YOLO over the tiny-grid detector.
func rawSpec(id, frames int) StreamSpec {
	vcfg := vidgen.Small(int64(900+id), frame.ClassCar, 0.5)
	vcfg.StreamID = id
	return StreamSpec{
		ID:     id,
		Source: vidgen.New(vcfg),
		Frames: frames,
		FPS:    30,
		SDD:    filters.NewSDD(imgproc.NewGray(filters.SDDSize, filters.SDDSize), 0.1, filters.MetricMSE),
		SNM:    filters.NewSNM(nil, 0.3, 0.7, 0.5),
		TYolo:  filters.NewTYolo(detect.NewTinyGrid(detect.DefaultTinyGridConfig()), frame.ClassCar, 1),
		Target: frame.ClassCar,
	}
}

// TestClosedQueuePutsAccounted is the regression test for the silent
// frame-loss bug: before the fix, a frame whose downstream queue had been
// closed was discarded with no Record, leaving Done=false holes that
// skewed accuracy and latency accounting — and Report had no assertion to
// notice. Now such frames get an explicit DropClosed disposition and
// Report's conservation check would panic if any frame still vanished.
func TestClosedQueuePutsAccounted(t *testing.T) {
	clk := vclock.NewVirtual()
	cfg := DefaultConfig(clk)
	cfg.Mode = Online
	cfg.DisableSDD = true // every frame tries the SDD→SNM edge
	cfg.DisableSNM = true

	const frames = 150
	sys := New(cfg, []StreamSpec{rawSpec(0, frames)})
	sys.Start()
	clk.Go("saboteur", func() {
		clk.Sleep(2 * time.Second)
		sys.streams[0].snmQ.Close()
	})
	clk.Run()
	rep := sys.Report() // pre-fix: panics on unaccounted frames

	sr := rep.Streams[0]
	if sr.Counts[DropClosed] == 0 {
		t.Fatal("no DropClosed records: frames hitting the closed queue were lost silently")
	}
	var sum int64
	for _, c := range sr.Counts {
		sum += c
	}
	if sum != frames || sr.Ingested != frames {
		t.Fatalf("dispositions %v sum %d, ingested %d, want %d", sr.Counts, sum, sr.Ingested, frames)
	}
	for seq, rec := range sr.Records {
		if !rec.Done {
			t.Fatalf("frame %d has no record", seq)
		}
		if rec.Disposition == DropClosed && rec.Decided < rec.Captured {
			t.Fatalf("frame %d: DropClosed decided %v before captured %v", seq, rec.Decided, rec.Captured)
		}
	}
}

// TestReportPanicsOnLostFrame proves the conservation assertion itself
// works: hand-destroying a record after a clean run must make Report
// refuse to produce numbers.
func TestReportPanicsOnLostFrame(t *testing.T) {
	clk := vclock.NewVirtual()
	cfg := DefaultConfig(clk)
	cfg.DisableSDD = true
	cfg.DisableSNM = true
	sys := New(cfg, []StreamSpec{rawSpec(1, 40)})
	sys.Start()
	clk.Run()
	sys.streams[0].records[7] = Record{} // simulate a silently lost frame
	defer func() {
		if recover() == nil {
			t.Fatal("Report accepted a stream with an unaccounted frame")
		}
	}()
	sys.Report()
}
