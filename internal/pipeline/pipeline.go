// Package pipeline implements FFS-VA's four-stage pipelined filtering
// engine (paper §3.1): per-stream prefetch → SDD → SNM stages feeding a
// globally shared T-YOLO stage and a final reference-model stage, all
// decoupled by bounded feedback queues (§4.3.1), with static, feedback
// and dynamic batch policies for the SNM (§4.3.2), and task placement on
// modeled CPU/GPU devices.
//
// The same engine runs under a RealClock (real-time emulation with real
// filter computation) or a VirtualClock (deterministic discrete-event
// timing for the benchmark harness); filter decisions always come from
// running the real filter algorithms over the frames.
package pipeline

import (
	"fmt"
	"sync"
	"time"

	"ffsva/internal/detect"
	"ffsva/internal/device"
	"ffsva/internal/filters"
	"ffsva/internal/frame"
	"ffsva/internal/metrics"
	"ffsva/internal/queue"
	"ffsva/internal/spill"
	"ffsva/internal/trace"
	"ffsva/internal/vclock"
)

// Mode selects the paper's two scenarios.
type Mode int

// Analysis modes.
const (
	// Offline processes stored video as fast as possible.
	Offline Mode = iota
	// Online paces each stream at its capture FPS and must keep up.
	Online
)

// String names the mode.
func (m Mode) String() string {
	if m == Online {
		return "online"
	}
	return "offline"
}

// BatchPolicy selects how the SNM stage forms batches (paper §5.4).
type BatchPolicy int

// Batch policies.
const (
	// BatchStatic waits for a full BatchSize using effectively unbounded
	// queues (no feedback).
	BatchStatic BatchPolicy = iota
	// BatchFeedback waits for a full batch bounded by the queue depth
	// threshold (feedback-queue mechanism alone).
	BatchFeedback
	// BatchDynamic drains whatever is available up to BatchSize, never
	// waiting for a full batch (the paper's dynamic batch mechanism).
	BatchDynamic
)

// String names the policy.
func (b BatchPolicy) String() string {
	switch b {
	case BatchStatic:
		return "static"
	case BatchFeedback:
		return "feedback"
	default:
		return "dynamic"
	}
}

// Disposition records where a frame's journey ended.
type Disposition int8

// Frame dispositions.
const (
	DropSDD Disposition = iota
	DropSNM
	DropTYolo
	Detected // reached and was analyzed by the reference model
	// DropClosed marks a frame discarded because its downstream queue had
	// been closed (e.g. a stream stopped for cluster re-forwarding while
	// frames were in flight). Without this disposition such frames would
	// vanish with no Record, leaving Done=false holes that silently skew
	// accuracy and latency accounting.
	DropClosed
	// DropError marks a frame lost to a fault: a decode failure past the
	// retry budget, a corrupted payload, or an instance crash while the
	// frame was in flight. Recording it keeps the conservation invariant
	// intact through failures.
	DropError
	// DropShed marks a frame dropped by the load-shedding bypass: with
	// Config.ShedAfter exceeded and the capture buffer full, ingest sheds
	// instead of stalling, preserving the ≥30 FPS capture guarantee.
	DropShed
	// DropAdmission marks a frame rejected before ingest: the cluster
	// scheduler refused the whole stream (tenant quota exhausted, cluster
	// quota exhausted, or no live instance), so its entire frame budget is
	// charged here. No pipeline ever sees these frames — the cluster
	// report's Drops ledger carries them, keeping cluster-wide frame
	// conservation (admitted + rejected = offered) checkable.
	DropAdmission

	// NumDispositions sizes per-disposition count arrays.
	NumDispositions = 8
)

// String names the disposition.
func (d Disposition) String() string {
	switch d {
	case DropSDD:
		return "drop-sdd"
	case DropSNM:
		return "drop-snm"
	case DropTYolo:
		return "drop-t-yolo"
	case DropClosed:
		return "drop-closed"
	case DropError:
		return "drop-error"
	case DropShed:
		return "drop-shed"
	case DropAdmission:
		return "drop-admission"
	default:
		return "detected"
	}
}

// Record is the per-frame outcome kept for accuracy and latency analysis.
// It deliberately retains no pixel data.
type Record struct {
	// Done distinguishes a written record from a zero value.
	Done        bool
	Seq         int64
	Disposition Disposition
	Captured    time.Duration
	Decided     time.Duration
	// TruthCount is the ground-truth number of target objects (from the
	// synthetic annotation); -1 when unknown.
	TruthCount int
	// SceneID is the ground-truth scene id (0 = none).
	SceneID int64
	// MaxVisible is the largest visible fraction among ground-truth
	// target boxes, 0 when none.
	MaxVisible float64
	// RefCount is the reference model's target count for frames that
	// reached it; -1 otherwise. Under consolidation this is the count
	// over the packed crops (truncation-adjusted).
	RefCount int
	// RefFullCount is what a full-frame reference inference counts for
	// the same frame; -1 when not measured. It differs from RefCount
	// only under consolidation, where crops can truncate objects —
	// lab.ScoreConsolidation reports the delta.
	RefFullCount int
}

// Latency returns the frame's decision latency.
func (r Record) Latency() time.Duration { return r.Decided - r.Captured }

// FrameSource produces a stream's frames; vidgen.Stream implements it.
type FrameSource interface {
	Next() *frame.Frame
}

// FallibleSource is a FrameSource whose decodes can fail (fault
// injection; faults.Source implements it). The prefetcher probes
// DecodeFails before pulling: each true is one failed attempt, retried
// within Config.DecodeRetryBudget. A frame still failing past the
// budget is abandoned via Discard — the source advances past it without
// delivering a frame — and recorded as DropError so the conservation
// ledger stays complete. The probe/pull split keeps the actual pull
// atomic with the stop check (continuation sizing), which a consuming
// try-decode could not.
type FallibleSource interface {
	FrameSource
	DecodeFails() bool
	Discard()
}

// StreamSpec is one video stream plus its specialized filters.
type StreamSpec struct {
	ID     int
	Source FrameSource
	// Frames is how many frames to process.
	Frames int
	// FPS paces online ingest (default 30).
	FPS int
	// StartAt delays the stream's first frame (cluster admission).
	StartAt time.Duration

	SDD *filters.SDD
	SNM *filters.SNM
	// TYolo is this stream's counting filter; its Det detector is shared
	// across streams by construction.
	TYolo *filters.TYolo
	// Target is the stream's target class, used for record truth fields.
	Target frame.Class
	// SeqBase is the source sequence number of the stream's first frame;
	// non-zero when a stream is a migrated continuation (cluster
	// re-forwarding) of an earlier stream.
	SeqBase int64
}

// Config assembles a System.
type Config struct {
	Clock vclock.Clock
	Costs device.CostModel
	// ChargeCosts enables device service-time charging. When false the
	// pipeline is purely functional (real compute, no modeled time).
	ChargeCosts bool
	Mode        Mode
	BatchPolicy BatchPolicy
	// BatchSize is the SNM batch bound (paper default 10 in-pipeline).
	BatchSize int
	// Queue depth thresholds (paper §4.3.1 defaults 2/10/2).
	DepthSDD, DepthSNM, DepthTYolo int
	// NumTYolo caps frames taken from one stream per T-YOLO cycle
	// (§3.2.3 inter-stream fairness).
	NumTYolo int
	// DepthRef bounds the reference queue.
	DepthRef int
	// IngestBuffer is the online capture buffer in frames: scene bursts
	// park here while the back-end catches up, so ingest holds 30 FPS
	// (the paper's bypass; it reports online latencies of several
	// seconds as tolerable). Offline runs use DepthSDD instead, since
	// stored video needs no capture buffer.
	IngestBuffer int
	// SpillToStorage enables the §5.5 burst remedy: when a stream's
	// capture buffer is full, frames divert to a disk-backed spill store
	// instead of blocking ingest, and re-inject in order once the
	// pipeline has room. Online mode only.
	SpillToStorage bool
	// FilterGPUs is how many GPUs carry the filter stages (the paper's
	// §4.3.2 note: "tasks of SNM or T-YOLO can be reasonably distributed
	// across multiple GPUs"). Each stream's SNM is pinned to GPU
	// (ID mod FilterGPUs); the shared T-YOLO round-robins its batches
	// across all filter GPUs. The reference model always has its own
	// additional GPU. Default 1, the paper's two-GPU server.
	FilterGPUs int
	// CPUSlots is CPU core capacity for decode/SDD/resize tasks.
	CPUSlots int
	// Ref is the reference model detector (shared).
	Ref detect.Detector
	// RefConf is the confidence threshold applied to the reference
	// model's detections when counting target objects; zero means the
	// default 0.5.
	RefConf float64

	// Object-level consolidation of the reference tier (Rivas et al.):
	// instead of one full-frame reference inference per surviving frame,
	// T-YOLO's candidate boxes are cropped with padding, shelf-packed
	// into fixed canvases across streams, and each canvas costs one
	// reference inference. See DESIGN.md §15.

	// Consolidate turns crop-and-pack consolidation on.
	Consolidate bool
	// ConsolidateCanvas is the square canvas side in pixels (default
	// 416, the YOLOv2 input).
	ConsolidateCanvas int
	// ConsolidatePad is the padding added around each candidate crop
	// (default 8); padding recovers objects T-YOLO localized loosely.
	ConsolidatePad int
	// ConsolidateFrames bounds how many frames one consolidation round
	// gathers from the reference queue (default 16).
	ConsolidateFrames int
	// ConsolidateWait is the deadline a partially-filled round waits for
	// more frames before packing what it has (default 2ms of modeled
	// time); zero-with-Consolidate uses the default, negative disables
	// the top-up wait.
	ConsolidateWait time.Duration
	// ConsolidateMinCover is the fraction of a reference detection's box
	// that must fall inside a single crop for the detection to count in
	// the consolidated tally (default 0.7). Objects truncated by crop
	// boundaries below it are the consolidation accuracy cost.
	ConsolidateMinCover float64

	// Fault tolerance.

	// DecodeRetryBudget is how many times a failed frame decode is
	// retried before the frame is abandoned with DropError. Zero means
	// the default (2); negative disables retries.
	DecodeRetryBudget int
	// ShedAfter enables the load-shedding bypass when positive: once a
	// stream's ingest lateness exceeds it, frames that do not fit in the
	// capture buffer are shed (DropShed) instead of blocking ingest, so
	// capture holds its FPS while the back-end is degraded. Zero keeps
	// the default blocking behaviour.
	ShedAfter time.Duration
	// AdjustService, when set, post-processes every modeled device
	// service time: it receives the device name, the current clock time,
	// and the nominal duration, and returns the duration to charge. The
	// faults package supplies it to inject device slowdowns and stalls;
	// it must be fast and must not block.
	AdjustService func(dev string, now, dur time.Duration) time.Duration
	// HeartbeatEvery, when positive, runs a liveness heartbeat process:
	// the instance stamps its clock time every interval until it crashes
	// or finishes. A cluster manager detects a dead instance by the
	// stamp going stale. Zero (the default) runs no heartbeat.
	HeartbeatEvery time.Duration

	// Tracer, when set, records a per-frame span trace (queue waits,
	// batch assembly, per-device service; see internal/trace). Nil — the
	// default — keeps the hot path span-free: frames carry a nil trace
	// record and every instrumentation point is one pointer check.
	Tracer *trace.Tracer
	// Instance tags this pipeline's spans and instants with its cluster
	// instance id (0 for single-instance runs), so one Tracer can hold a
	// whole cluster's timeline.
	Instance int

	// Ablation switches (not part of the paper's system; used by the
	// ablation benches to quantify each design choice).

	// DisableSDD bypasses the difference detector: every frame goes
	// straight to the SNM.
	DisableSDD bool
	// DisableSNM bypasses the specialized network: every SDD survivor
	// goes straight to T-YOLO.
	DisableSNM bool
	// PerStreamTYolo models one private T-YOLO per stream instead of the
	// shared model: every T-YOLO batch pays a full model reload.
	PerStreamTYolo bool
	// TYoloReload is the per-batch reload charge under PerStreamTYolo
	// (defaults to 60ms, ~1.2 GB over PCIe).
	TYoloReload time.Duration
}

// DefaultConfig returns the paper's defaults on a fresh clock.
func DefaultConfig(clk vclock.Clock) Config {
	return Config{
		Clock:       clk,
		Costs:       device.Calibrated(),
		ChargeCosts: true,
		Mode:        Offline,
		BatchPolicy: BatchDynamic,
		BatchSize:   10,
		DepthSDD:    2, DepthSNM: 10, DepthTYolo: 2,
		NumTYolo: 8,
		DepthRef: 4,
		CPUSlots: 16,
		Ref:      detect.NewOracle(detect.DefaultOracleConfig()),
	}
}

func (c *Config) fill() {
	if c.BatchSize <= 0 {
		c.BatchSize = 10
	}
	if c.DepthSDD <= 0 {
		c.DepthSDD = 2
	}
	if c.DepthSNM <= 0 {
		c.DepthSNM = 10
	}
	if c.DepthTYolo <= 0 {
		c.DepthTYolo = 2
	}
	if c.DepthRef <= 0 {
		c.DepthRef = 4
	}
	if c.NumTYolo <= 0 {
		c.NumTYolo = 8
	}
	if c.CPUSlots <= 0 {
		c.CPUSlots = 16
	}
	if c.IngestBuffer <= 0 {
		c.IngestBuffer = 600 // 20 s at 30 FPS
	}
	if c.FilterGPUs <= 0 {
		c.FilterGPUs = 1
	}
	switch {
	case c.DecodeRetryBudget == 0:
		c.DecodeRetryBudget = 2
	case c.DecodeRetryBudget < 0:
		c.DecodeRetryBudget = 0
	}
	if c.RefConf <= 0 {
		c.RefConf = 0.5
	}
	if c.ConsolidateCanvas <= 0 {
		c.ConsolidateCanvas = 416
	}
	if c.ConsolidatePad <= 0 {
		c.ConsolidatePad = 8
	}
	if c.ConsolidateFrames <= 0 {
		c.ConsolidateFrames = 16
	}
	switch {
	case c.ConsolidateWait == 0:
		c.ConsolidateWait = 2 * time.Millisecond
	case c.ConsolidateWait < 0:
		c.ConsolidateWait = 0
	}
	if c.ConsolidateMinCover <= 0 {
		c.ConsolidateMinCover = 0.7
	}
}

// streamState is the per-stream runtime.
type streamState struct {
	spec StreamSpec

	sddQ *queue.Queue[*frame.Frame]
	snmQ *queue.Queue[*frame.Frame]
	tyQ  *queue.Queue[*frame.Frame]

	records []Record
	spill   *spill.Store // nil unless Config.SpillToStorage

	ingested  int64
	firstCap  time.Duration
	lastDone  time.Duration
	ingestLag time.Duration // worst lateness vs. the capture schedule
	curLag    time.Duration // most recent lateness (overload signal)
	// counts tallies decided frames by Disposition as they finish, so the
	// live Snapshot can report per-stage drops before Report runs.
	counts     [NumDispositions]int64
	stop       bool // set by StopStream; prefetch halts at next frame
	ingestDone bool // prefetch exhausted its frames (or stopped)
}

// System is one FFS-VA instance: devices, queues, and stage processes for
// a set of streams.
type System struct {
	cfg Config

	cpu *device.Device
	// filterGPUs carry SNMs and T-YOLO (paper placement: one GPU shared
	// by all filters; more with Config.FilterGPUs).
	filterGPUs []*device.Device
	gpu1       *device.Device // reference model
	disk       *device.Device // spill storage (nil unless enabled)

	streams []*streamState
	refQ    *queue.Queue[*frame.Frame]

	// tyNotifies has one wake signal per T-YOLO worker (one worker per
	// filter GPU; streams are partitioned by ID).
	tyNotifies []*notify
	tyLive     int // running T-YOLO workers (guarded by streamsMu)

	start     time.Duration
	end       time.Duration
	tyMeter   *metrics.SyncMeter
	latency   *metrics.Histogram
	refServed metrics.Counter

	// reg is the system's metrics registry; Snapshot exports it. The
	// named metrics below are cached handles into it.
	reg       *metrics.Registry
	ingestCtr *metrics.Counter        // frames_ingested_total
	dispCtr   *metrics.LabeledCounter // frames_disposed_total{disposition}
	orphanCtr *metrics.Counter        // frames_orphaned_total (no owning stream)
	canvasCtr *metrics.Counter        // ref_canvases_total (consolidation canvases inferred)
	snmBatch  *metrics.IntDist        // snm_batch_size
	faultCtr  *metrics.Counter        // faults_injected_total
	retryCtr  *metrics.Counter        // retries_total (decode retries)
	shedCtr   *metrics.Counter        // shed_frames_total

	recMu     sync.Locker // guards per-stream record bookkeeping
	streamsMu sync.Locker // guards streams slice after Start
	liveMu    sync.Locker // guards liveSNM, tyLive and finished

	started   bool
	finished  bool // refStage exited: no further frame can be decided
	cancelled bool // CancelAll stopped ingest early (guarded by recMu)
	crashed   bool // Crash() killed the instance (guarded by recMu)
	liveSNM   int  // SNM stages still running + holds
	// lastBeat is the heartbeat's latest clock stamp (guarded by recMu);
	// it freezes when the instance crashes or finishes.
	lastBeat time.Duration
}

// New builds a System; Start launches its processes on the configured
// clock.
func New(cfg Config, specs []StreamSpec) *System {
	cfg.fill()
	if cfg.Clock == nil {
		panic("pipeline: Config.Clock is required")
	}
	if cfg.Ref == nil {
		panic("pipeline: Config.Ref is required")
	}
	if cfg.PerStreamTYolo {
		// Inflate the T-YOLO activation charge to a full model reload;
		// tyStage invalidates the device before each batch so it is paid
		// every time.
		reload := cfg.TYoloReload
		if reload <= 0 {
			reload = 60 * time.Millisecond
		}
		costs := device.CostModel{}
		for k, v := range cfg.Costs {
			costs[k] = v
		}
		c := costs[device.ModelTYolo]
		c.Activate = reload
		costs[device.ModelTYolo] = c
		cfg.Costs = costs
	}
	reg := metrics.NewRegistry()
	s := &System{
		cfg:       cfg,
		cpu:       device.New(cfg.Clock, "cpu", device.CPU, cfg.CPUSlots),
		refQ:      queue.New[*frame.Frame](cfg.Clock, "ref", cfg.DepthRef),
		tyMeter:   reg.Meter("tyolo_fps", time.Second, 5),
		latency:   reg.Histogram("frame_latency"),
		reg:       reg,
		ingestCtr: reg.Counter("frames_ingested_total"),
		dispCtr:   reg.LabeledCounter("frames_disposed_total"),
		orphanCtr: reg.Counter("frames_orphaned_total"),
		canvasCtr: reg.Counter("ref_canvases_total"),
		snmBatch:  reg.IntDist("snm_batch_size"),
		faultCtr:  reg.Counter("faults_injected_total"),
		retryCtr:  reg.Counter("retries_total"),
		shedCtr:   reg.Counter("shed_frames_total"),
	}
	for i := 0; i < cfg.FilterGPUs; i++ {
		s.filterGPUs = append(s.filterGPUs, device.New(cfg.Clock, fmt.Sprintf("gpu%d", i), device.GPU, 1))
	}
	s.gpu1 = device.New(cfg.Clock, fmt.Sprintf("gpu%d", cfg.FilterGPUs), device.GPU, 1)
	for i := 0; i < cfg.FilterGPUs; i++ {
		s.tyNotifies = append(s.tyNotifies, newNotify(cfg.Clock))
	}
	s.recMu = cfg.Clock.NewLocker()
	s.streamsMu = cfg.Clock.NewLocker()
	s.liveMu = cfg.Clock.NewLocker()
	if cfg.SpillToStorage {
		s.disk = device.New(cfg.Clock, "ssd", device.Disk, 1)
	}
	if cfg.AdjustService != nil {
		devs := append([]*device.Device{s.cpu, s.gpu1}, s.filterGPUs...)
		if s.disk != nil {
			devs = append(devs, s.disk)
		}
		for _, d := range devs {
			d := d
			d.SetAdjust(func(now, dur time.Duration) time.Duration {
				nd := cfg.AdjustService(d.Name, now, dur)
				if nd != dur {
					s.faultCtr.Inc()
					cfg.Tracer.Instant("fault "+d.Name, "fault", cfg.Instance, now)
				}
				return nd
			})
		}
	}
	s.traceHooks(s.refQ, trace.KWaitRef)
	for _, spec := range specs {
		s.streams = append(s.streams, s.newStream(spec))
	}
	return s
}

// newStream validates a spec and builds its runtime state.
func (s *System) newStream(spec StreamSpec) *streamState {
	if spec.Frames <= 0 {
		panic(fmt.Sprintf("pipeline: stream %d has no frames", spec.ID))
	}
	if spec.FPS <= 0 {
		spec.FPS = 30
	}
	cfg := s.cfg
	snmDepth := cfg.DepthSNM
	if cfg.BatchPolicy == BatchStatic {
		// Static batching has no feedback: the SNM queue must hold a
		// full batch regardless of the depth threshold.
		snmDepth = max(cfg.BatchSize*4, cfg.DepthSNM)
	}
	sddDepth := cfg.DepthSDD
	if cfg.Mode == Online {
		sddDepth = max(cfg.IngestBuffer, cfg.DepthSDD)
	}
	var store *spill.Store
	if cfg.SpillToStorage && cfg.Mode == Online {
		store = spill.New(cfg.Clock, s.disk, cfg.ChargeCosts)
	}
	st := &streamState{
		spec:    spec,
		spill:   store,
		sddQ:    queue.New[*frame.Frame](cfg.Clock, fmt.Sprintf("sdd[%d]", spec.ID), sddDepth),
		snmQ:    queue.New[*frame.Frame](cfg.Clock, fmt.Sprintf("snm[%d]", spec.ID), snmDepth),
		tyQ:     queue.New[*frame.Frame](cfg.Clock, fmt.Sprintf("ty[%d]", spec.ID), cfg.DepthTYolo),
		records: make([]Record, spec.Frames),
	}
	s.traceHooks(st.sddQ, trace.KWaitSDD)
	s.traceHooks(st.snmQ, trace.KWaitSNM)
	s.traceHooks(st.tyQ, trace.KWaitTYolo)
	return st
}

// traceHooks turns a queue's put→pop interval into a queue-wait span on
// the resident frame and its feedback throttling into instant events.
// The hooks run under the queue lock, which is also what hands frame
// (and trace-record) ownership from producer to consumer — so the span
// writes are ordered without any locking of their own. No-op when
// tracing is off.
func (s *System) traceHooks(q *queue.Queue[*frame.Frame], k trace.Kind) {
	tr := s.cfg.Tracer
	if tr == nil {
		return
	}
	instance := s.cfg.Instance
	throttle := "throttle " + q.Name()
	q.SetHooks(queue.Hooks[*frame.Frame]{
		OnPut: func(f *frame.Frame, now time.Duration) {
			f.Trace.BeginWait(k, now)
		},
		OnPop: func(f *frame.Frame, now time.Duration) {
			f.Trace.EndWait(now)
		},
		OnBlocked: func(now time.Duration) {
			tr.Instant(throttle, "feedback", instance, now)
		},
	})
}

// notify is a clock-integrated counting signal used to wake the shared
// T-YOLO coordinator when any stream enqueues work.
type notify struct {
	mu interface {
		Lock()
		Unlock()
	}
	cond   vclock.Cond
	n      int
	closed bool
}

func newNotify(clk vclock.Clock) *notify {
	l := clk.NewLocker()
	return &notify{mu: l, cond: clk.NewCond(l)}
}

func (n *notify) add(k int) {
	n.mu.Lock()
	n.n += k
	n.cond.Signal()
	n.mu.Unlock()
}

func (n *notify) sub(k int) {
	n.mu.Lock()
	n.n -= k
	n.mu.Unlock()
}

// wait blocks until work is pending or the signal is closed; it reports
// whether work may remain. The n<=0 guard (rather than n==0) tolerates
// the real-clock race where the consumer drains an item before its add
// lands.
func (n *notify) wait() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for n.n <= 0 && !n.closed {
		n.cond.Wait()
	}
	return n.n > 0 || !n.closed
}

func (n *notify) close() {
	n.mu.Lock()
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
}
