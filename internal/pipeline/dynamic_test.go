package pipeline_test

import (
	"testing"
	"time"

	"ffsva/internal/detect"
	"ffsva/internal/lab"
	"ffsva/internal/pipeline"
	"ffsva/internal/vclock"
)

// TestAddStreamMidRun admits a stream into a running system via a manager
// process holding the shared stages open.
func TestAddStreamMidRun(t *testing.T) {
	cam, err := lab.CarCamera(0.2)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	cfg := pipeline.DefaultConfig(clk)
	cfg.Mode = pipeline.Online
	tg := detect.NewTinyGrid(detect.DefaultTinyGridConfig())
	first := cam.Stream(0, tg, lab.StreamOptions{Seed: 11, Frames: 300})
	sys := pipeline.New(cfg, []pipeline.StreamSpec{first})
	sys.Hold()
	sys.Start()
	clk.Go("manager", func() {
		clk.Sleep(3 * time.Second)
		sys.AddStream(cam.Stream(1, tg, lab.StreamOptions{Seed: 12, Frames: 150}))
		sys.Release()
	})
	clk.Run()
	rep := sys.Report()
	if len(rep.Streams) != 2 {
		t.Fatalf("streams = %d", len(rep.Streams))
	}
	for _, sr := range rep.Streams {
		for seq, rec := range sr.Records {
			if !rec.Done {
				t.Fatalf("stream %d frame %d undecided", sr.ID, seq)
			}
		}
	}
	// The second stream began ~3s into the run.
	if rep.Streams[1].FirstCapture < 3*time.Second {
		t.Fatalf("added stream started at %v", rep.Streams[1].FirstCapture)
	}
}

// TestStopStreamAndContinue migrates a stream within one system by
// stopping it and admitting a continuation with the proper SeqBase.
func TestStopStreamAndContinue(t *testing.T) {
	cam, err := lab.CarCamera(0.2)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	cfg := pipeline.DefaultConfig(clk)
	cfg.Mode = pipeline.Online
	tg := detect.NewTinyGrid(detect.DefaultTinyGridConfig())
	spec := cam.Stream(0, tg, lab.StreamOptions{Seed: 21, Frames: 300})
	sys := pipeline.New(cfg, []pipeline.StreamSpec{spec})
	sys.Hold()
	sys.Start()
	var remaining int64
	clk.Go("manager", func() {
		clk.Sleep(4 * time.Second)
		rem, src, nextSeq, ok := sys.StopStream(0)
		if !ok {
			t.Error("StopStream failed")
			sys.Release()
			return
		}
		remaining = rem
		cont := spec
		cont.ID = 100
		cont.Source = src
		cont.Frames = int(rem)
		cont.SeqBase = nextSeq
		sys.AddStream(cont)
		sys.Release()
	})
	clk.Run()
	rep := sys.Report()
	if remaining <= 0 || remaining >= 300 {
		t.Fatalf("remaining = %d, want a mid-run stop", remaining)
	}
	var done int64
	for _, sr := range rep.Streams {
		for _, rec := range sr.Records {
			if rec.Done {
				done++
			}
		}
	}
	if done != 300 {
		t.Fatalf("decided %d frames across fragments, want 300", done)
	}
}

// TestStopUnknownStream returns ok=false.
func TestStopUnknownStream(t *testing.T) {
	cam, err := lab.CarCamera(0.2)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	cfg := pipeline.DefaultConfig(clk)
	sys := pipeline.New(cfg, []pipeline.StreamSpec{
		cam.Stream(0, nil, lab.StreamOptions{Seed: 31, Frames: 60}),
	})
	sys.Hold()
	sys.Start()
	clk.Go("manager", func() {
		if _, _, _, ok := sys.StopStream(42); ok {
			t.Error("StopStream(42) succeeded for unknown id")
		}
		sys.Release()
	})
	clk.Run()
}

// TestEmptySystemWithHoldDrains proves a held system with no streams
// shuts down cleanly on Release.
func TestEmptySystemWithHoldDrains(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := pipeline.New(pipeline.DefaultConfig(clk), nil)
	sys.Hold()
	sys.Start()
	clk.Go("manager", func() {
		clk.Sleep(time.Second)
		sys.Release()
	})
	clk.Run()
	rep := sys.Report()
	if rep.TotalFrames != 0 || len(rep.Streams) != 0 {
		t.Fatalf("empty system report: %+v", rep)
	}
}

// TestWorstBacklogVisible verifies the overload-backlog signal.
func TestWorstBacklogVisible(t *testing.T) {
	cam, err := lab.CarCamera(1.0)
	if err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewVirtual()
	cfg := pipeline.DefaultConfig(clk)
	cfg.Mode = pipeline.Online
	sys := pipeline.New(cfg, []pipeline.StreamSpec{
		cam.Stream(0, detect.NewTinyGrid(detect.DefaultTinyGridConfig()), lab.StreamOptions{Seed: 41, Frames: 240, TOR: 1.0}),
	})
	sys.Hold()
	sys.Start()
	saw := 0
	clk.Go("monitor", func() {
		for i := 0; i < 7; i++ {
			clk.Sleep(time.Second)
			if sys.WorstBacklog() > 0 {
				saw++
			}
		}
		sys.Release()
	})
	clk.Run()
	// At TOR 1.0 the backlog signal should register at least transiently.
	t.Logf("backlog observed in %d/7 samples", saw)
}
