package pipeline

// Tests for object-level consolidation of the reference tier: frame
// conservation through the consolidator, the per-canvas charge model
// actually consolidating (fewer canvases than served frames), the dual
// count tally, and byte-determinism of consolidated runs.

import (
	"bytes"
	"testing"

	"ffsva/internal/trace"
	"ffsva/internal/vclock"
)

// runConsolidated builds and runs a fresh consolidated system and
// returns its report plus the JSONL trace export.
func runConsolidated(t *testing.T, streams, frames int) (*Report, []byte) {
	t.Helper()
	clk := vclock.NewVirtual()
	cfg := DefaultConfig(clk)
	cfg.DisableSDD = true // drive plenty of frames into the reference tier
	cfg.DisableSNM = true
	cfg.Consolidate = true
	tr := trace.New(trace.Options{})
	cfg.Tracer = tr

	specs := make([]StreamSpec, streams)
	for i := range specs {
		specs[i] = rawSpec(i, frames)
	}
	sys := New(cfg, specs)
	rep := sys.Run() // panics if any frame lost its disposition

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	return rep, buf.Bytes()
}

func TestConsolidateConservesAndPacks(t *testing.T) {
	const streams, frames = 3, 120
	rep, _ := runConsolidated(t, streams, frames)

	if rep.TotalFrames != int64(streams*frames) {
		t.Fatalf("ingested %d frames, want %d", rep.TotalFrames, streams*frames)
	}
	var detected int64
	for _, sr := range rep.Streams {
		detected += sr.Counts[Detected]
		for seq, rec := range sr.Records {
			if !rec.Done {
				t.Fatalf("stream %d frame %d has no record", sr.ID, seq)
			}
			if rec.Disposition == Detected {
				if rec.RefCount < 0 || rec.RefFullCount < 0 {
					t.Fatalf("stream %d frame %d: consolidated record missing a tally: ref=%d full=%d",
						sr.ID, seq, rec.RefCount, rec.RefFullCount)
				}
				if rec.RefCount > rec.RefFullCount {
					t.Fatalf("stream %d frame %d: crops counted %d > full frame %d — clipping can only lose objects",
						sr.ID, seq, rec.RefCount, rec.RefFullCount)
				}
			}
		}
	}
	if detected == 0 {
		t.Fatal("no frame reached the reference tier; the consolidator never ran")
	}
	if rep.StageProcessed[4] != detected {
		t.Fatalf("reference served %d, detected %d", rep.StageProcessed[4], detected)
	}
	if rep.RefCanvases == 0 {
		t.Fatal("no canvases charged")
	}
	if rep.RefCanvases >= detected {
		t.Fatalf("canvases %d >= served frames %d: consolidation saved nothing",
			rep.RefCanvases, detected)
	}
}

func TestConsolidateDeterministic(t *testing.T) {
	rep1, jsonl1 := runConsolidated(t, 2, 90)
	rep2, jsonl2 := runConsolidated(t, 2, 90)
	if rep1.String() != rep2.String() {
		t.Fatalf("reports differ:\n%s\n---\n%s", rep1, rep2)
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Fatal("two seeded consolidated runs produced different trace event logs")
	}
}

// TestConsolidateMatchesFullFrameCounts pins the accuracy accounting:
// with a canvas big enough and generous coverage padding, most
// consolidated counts must agree with the full-frame reference, and the
// disagreements must all be undercounts (truncation).
func TestConsolidateAccuracyDelta(t *testing.T) {
	rep, _ := runConsolidated(t, 2, 150)
	var frames, exact int64
	for _, sr := range rep.Streams {
		for _, rec := range sr.Records {
			if rec.Disposition != Detected || rec.RefFullCount < 0 {
				continue
			}
			frames++
			if rec.RefCount == rec.RefFullCount {
				exact++
			}
		}
	}
	if frames == 0 {
		t.Skip("no reference-decided frames at this workload")
	}
	if float64(exact) < 0.5*float64(frames) {
		t.Fatalf("only %d/%d consolidated counts matched full-frame reference", exact, frames)
	}
}
