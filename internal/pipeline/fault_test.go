package pipeline_test

import (
	"testing"
	"time"

	"ffsva/internal/detect"
	"ffsva/internal/faults"
	"ffsva/internal/lab"
	"ffsva/internal/pipeline"
	"ffsva/internal/vclock"
)

// buildFaulty assembles a virtual-clock system of n car streams with a
// fault plan applied the way a single-instance run applies it: the
// injector drives AdjustService and wraps every stream's source.
func buildFaulty(t *testing.T, clk vclock.Clock, n int, tor float64, frames int, plan []faults.Fault, mutate func(*pipeline.Config)) *pipeline.System {
	t.Helper()
	cam, err := lab.CarCamera(tor)
	if err != nil {
		t.Fatal(err)
	}
	tg := detect.NewTinyGrid(detect.DefaultTinyGridConfig())
	cfg := pipeline.DefaultConfig(clk)
	inj := faults.NewInjector(faults.ForInstance(plan, 0))
	if len(plan) > 0 {
		cfg.AdjustService = inj.AdjustServiceTime
	}
	if mutate != nil {
		mutate(&cfg)
	}
	specs := make([]pipeline.StreamSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = cam.Stream(i, tg, lab.StreamOptions{Seed: int64(1000 + i), Frames: frames})
		specs[i].Source = inj.WrapSource(specs[i].Source, specs[i].ID)
	}
	return pipeline.New(cfg, specs)
}

// checkFaultConservation is frame conservation under failure: every
// ingested frame carries exactly one final disposition. (Frames lost to
// faults never reach the filters, so checkConservation's stage-to-stage
// identities do not apply here.)
func checkFaultConservation(t *testing.T, rep *pipeline.Report) {
	t.Helper()
	for _, sr := range rep.Streams {
		var sum int64
		for _, c := range sr.Counts {
			sum += c
		}
		if sum != sr.Ingested {
			t.Errorf("stream %d: dispositions %v sum %d, want ingested %d", sr.ID, sr.Counts, sum, sr.Ingested)
		}
	}
}

func TestDecodeRetryWithinBudget(t *testing.T) {
	clk := vclock.NewVirtual()
	// Three frames each fail twice; the default budget (2 retries)
	// recovers all of them.
	plan := []faults.Fault{{Kind: faults.DecodeError, Stream: 0, SeqFrom: 10, SeqTo: 13, Attempts: 2}}
	sys := buildFaulty(t, clk, 1, 0.103, 300, plan, nil)
	rep := sys.Run()
	// Every frame was eventually delivered, so full stage-to-stage
	// conservation still holds.
	checkConservation(t, rep)
	if got := rep.Streams[0].Counts[pipeline.DropError]; got != 0 {
		t.Errorf("recovered frames recorded %d DropError, want 0", got)
	}
	if rep.Retries != 6 {
		t.Errorf("retries = %d, want 6 (3 frames × 2 attempts)", rep.Retries)
	}
	if rep.FaultsInjected != 6 {
		t.Errorf("faults injected = %d, want 6", rep.FaultsInjected)
	}
}

func TestDecodeFailurePastBudgetDropsFrame(t *testing.T) {
	clk := vclock.NewVirtual()
	// Five consecutive failures exceed the 2-retry budget: the frame is
	// abandoned after the third failed attempt.
	plan := []faults.Fault{{Kind: faults.DecodeError, Stream: 0, SeqFrom: 10, SeqTo: 13, Attempts: 5}}
	sys := buildFaulty(t, clk, 1, 0.103, 300, plan, nil)
	rep := sys.Run()
	checkFaultConservation(t, rep)
	sr := rep.Streams[0]
	if sr.Ingested != 300 {
		t.Errorf("ingested %d frames, want 300 (lost frames still consume their slot)", sr.Ingested)
	}
	if got := sr.Counts[pipeline.DropError]; got != 3 {
		t.Errorf("DropError = %d, want 3", got)
	}
	if rep.Retries != 6 {
		t.Errorf("retries = %d, want 6 (2 within budget per frame)", rep.Retries)
	}
	if rep.FaultsInjected != 9 {
		t.Errorf("faults injected = %d, want 9 (3 failed attempts per frame)", rep.FaultsInjected)
	}
}

func TestCorruptFramesRejected(t *testing.T) {
	clk := vclock.NewVirtual()
	plan := []faults.Fault{{Kind: faults.CorruptFrame, Stream: 0, SeqFrom: 5, SeqTo: 10}}
	sys := buildFaulty(t, clk, 1, 0.103, 300, plan, nil)
	rep := sys.Run()
	checkFaultConservation(t, rep)
	sr := rep.Streams[0]
	if got := sr.Counts[pipeline.DropError]; got != 5 {
		t.Errorf("DropError = %d, want 5 corrupt frames rejected", got)
	}
	if rep.FaultsInjected != 5 {
		t.Errorf("faults injected = %d, want 5", rep.FaultsInjected)
	}
	// Corrupt frames are rejected before the SDD, so the filters only
	// saw the clean ones.
	if sr.SDDStats.Processed != sr.Ingested-5 {
		t.Errorf("SDD processed %d, want %d (corrupt frames bypass filtering)", sr.SDDStats.Processed, sr.Ingested-5)
	}
}

func TestCrashDrainsInFlightFrames(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := buildFaulty(t, clk, 2, 0.103, 450, nil, func(c *pipeline.Config) {
		c.Mode = pipeline.Online
		c.HeartbeatEvery = 500 * time.Millisecond
	})
	clk.Go("crash", func() {
		clk.Sleep(5 * time.Second)
		sys.Crash()
	})
	rep := sys.Run()
	if !rep.Crashed {
		t.Fatal("report does not mark the crash")
	}
	// Every frame ingested before the crash still gets a disposition —
	// in-flight frames drain to DropError instead of leaking (Report
	// panics on any hole in the ledger).
	checkFaultConservation(t, rep)
	for _, sr := range rep.Streams {
		if sr.Ingested >= int64(sr.Frames) {
			t.Errorf("stream %d ingested %d of %d frames despite crashing at 5s", sr.ID, sr.Ingested, sr.Frames)
		}
	}
	// The heartbeat froze at the crash; a cluster manager would see the
	// stamp go stale.
	if hb := sys.Heartbeat(); hb > 5*time.Second {
		t.Errorf("heartbeat advanced to %v after the 5s crash", hb)
	}
}

func TestSheddingBoundsLagUnderSlowdown(t *testing.T) {
	clk := vclock.NewVirtual()
	// The reference GPU runs at a tenth of its speed for the whole run:
	// at TOR 1.0 nearly every frame needs it, so the back-end falls
	// hopelessly behind and the capture buffer fills.
	plan := []faults.Fault{{
		Kind: faults.DeviceSlow, Device: "gpu1", Instance: 0,
		From: 0, Until: time.Hour, Factor: 10,
	}}
	sys := buildFaulty(t, clk, 1, 1.0, 450, plan, func(c *pipeline.Config) {
		c.Mode = pipeline.Online
		c.IngestBuffer = 60
		c.ShedAfter = 500 * time.Millisecond
	})
	rep := sys.Run()
	checkFaultConservation(t, rep)
	sr := rep.Streams[0]
	if sr.Ingested != 450 {
		t.Errorf("ingested %d frames, want all 450 — shedding must keep capture going", sr.Ingested)
	}
	if rep.ShedFrames == 0 {
		t.Error("no frames shed under a 10× reference slowdown")
	}
	if rep.FaultsInjected == 0 {
		t.Error("slowdown adjustments not counted as injected faults")
	}
	// The shedding bypass bounds ingest lateness near the threshold
	// instead of letting it grow with the backlog.
	if sr.IngestLag > 2*time.Second {
		t.Errorf("worst ingest lag %v despite shedding at 500ms", sr.IngestLag)
	}
}

func TestSheddingDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		clk := vclock.NewVirtual()
		plan := []faults.Fault{{
			Kind: faults.DeviceSlow, Device: "gpu1", Instance: 0,
			From: 0, Until: time.Hour, Factor: 10,
		}}
		sys := buildFaulty(t, clk, 1, 1.0, 300, plan, func(c *pipeline.Config) {
			c.Mode = pipeline.Online
			c.IngestBuffer = 60
			c.ShedAfter = 500 * time.Millisecond
		})
		rep := sys.Run()
		return rep.ShedFrames, rep.Streams[0].Counts[pipeline.Detected]
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("nondeterministic shedding: (%d,%d) vs (%d,%d)", s1, d1, s2, d2)
	}
}
