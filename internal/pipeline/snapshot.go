package pipeline

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ffsva/internal/device"
	"ffsva/internal/metrics"
	"ffsva/internal/queue"
)

// QueueSnapshot is one queue's uniform observability view.
type QueueSnapshot struct {
	Name        string `json:"name"`
	Depth       int    `json:"depth"`
	Cap         int    `json:"cap"`
	Puts        int64  `json:"puts"`
	Gets        int64  `json:"gets"`
	MaxDepth    int    `json:"max_depth"`
	BlockedPuts int64  `json:"blocked_puts"`
	ClosedPuts  int64  `json:"closed_puts"`
	Closed      bool   `json:"closed"`
}

func qsnap(name string, s queue.Stats) QueueSnapshot {
	return QueueSnapshot{
		Name: name, Depth: s.Depth, Cap: s.Cap,
		Puts: s.Puts, Gets: s.Gets, MaxDepth: s.MaxDepth,
		BlockedPuts: s.BlockedPuts, ClosedPuts: s.ClosedPuts, Closed: s.Closed,
	}
}

// StreamSnapshot is one stream's live state: ingest progress, queue
// depths and feedback counts, and decided frames by disposition.
type StreamSnapshot struct {
	ID       int   `json:"id"`
	Frames   int   `json:"frames"`
	Ingested int64 `json:"ingested"`
	// Decided is the number of frames with a final disposition; Ingested
	// minus Decided is the stream's in-flight population.
	Decided int64 `json:"decided"`
	// Drops indexes by Disposition (drop-sdd, drop-snm, drop-t-yolo,
	// detected, drop-closed).
	Drops      [NumDispositions]int64 `json:"drops"`
	IngestDone bool                   `json:"ingest_done"`
	Stopped    bool                   `json:"stopped"`
	// CurLag is the most recent lateness against the capture schedule
	// (zero once ingest completes); MaxLag the worst seen.
	CurLag time.Duration `json:"cur_lag"`
	MaxLag time.Duration `json:"max_lag"`
	// Backlog is the capture-buffer depth plus spilled frames — the
	// overload signal in frames; Backlog/FPS is seconds behind.
	Backlog      int           `json:"backlog"`
	SpillPending int           `json:"spill_pending"`
	Spilled      int64         `json:"spilled"`
	SDDQ         QueueSnapshot `json:"sdd_q"`
	SNMQ         QueueSnapshot `json:"snm_q"`
	TYQ          QueueSnapshot `json:"ty_q"`
}

// DeviceSnapshot is one device's live accounting.
type DeviceSnapshot struct {
	Name  string        `json:"name"`
	Kind  string        `json:"kind"`
	InUse int           `json:"in_use"`
	Slots int           `json:"slots"`
	Busy  time.Duration `json:"busy"`
	// BusyFraction is busy time over capacity × elapsed run time.
	BusyFraction float64 `json:"busy_fraction"`
	Served       int64   `json:"served"`
	Switches     int64   `json:"switches"`
}

// Snapshot is a live, consistent-enough view of a running System: every
// control signal the paper's mechanisms depend on — feedback-queue
// depths and blocked puts (§4.3.1), the T-YOLO rate behind the 140 FPS
// spare-capacity signal, ingest lag and backlog behind the overload
// signal, SNM batch-size distribution (§4.3.2), and device busy
// fractions — in one structure. The cluster manager and the periodic
// monitor both consume it.
type Snapshot struct {
	At          time.Duration `json:"at"`
	Mode        string        `json:"mode"`
	BatchPolicy string        `json:"batch_policy"`
	Finished    bool          `json:"finished"`
	// Crashed marks a dead instance (fault injection): its heartbeat is
	// frozen and in-flight frames drain to DropError.
	Crashed bool `json:"crashed,omitempty"`
	// Heartbeat is the instance's last liveness stamp (zero until the
	// heartbeat process first runs). The /healthz endpoint compares it
	// against At to detect a stalled instance.
	Heartbeat time.Duration `json:"heartbeat,omitempty"`
	// HeartbeatEvery echoes the configured heartbeat interval so health
	// checks know what staleness to tolerate (zero: no heartbeat runs).
	HeartbeatEvery time.Duration `json:"heartbeat_every,omitempty"`

	// Totals across streams.
	Ingested int64                  `json:"ingested"`
	Decided  int64                  `json:"decided"`
	InFlight int64                  `json:"in_flight"`
	Drops    [NumDispositions]int64 `json:"drops"`
	// Orphaned counts frames that reached the reference stage without an
	// owning stream (should stay zero).
	Orphaned int64 `json:"orphaned"`
	// RefCanvases counts consolidated canvases sent to the reference
	// model (zero unless Config.Consolidate).
	RefCanvases int64 `json:"ref_canvases,omitempty"`

	// Control signals (paper §4.3).
	TYoloRate    float64       `json:"tyolo_fps"`
	WorstLag     time.Duration `json:"worst_lag"`
	WorstBacklog int           `json:"worst_backlog"`
	Overloaded   bool          `json:"overloaded"`
	LiveStreams  int           `json:"live_streams"`

	// SNM batch-size distribution (counts indexed by batch size).
	SNMBatchCount int64   `json:"snm_batch_count"`
	SNMBatchMean  float64 `json:"snm_batch_mean"`
	SNMBatchMax   int     `json:"snm_batch_max"`
	SNMBatchDist  []int64 `json:"snm_batch_dist,omitempty"`

	Streams []StreamSnapshot `json:"streams"`
	RefQ    QueueSnapshot    `json:"ref_q"`
	Devices []DeviceSnapshot `json:"devices"`

	// Metrics is the registry export (counters, gauges, meters,
	// histogram summaries) at snapshot time.
	Metrics []metrics.Sample `json:"metrics,omitempty"`
}

// Snapshot samples the system's live state. It is safe to call from any
// clock process (the cluster manager, the periodic monitor) while stages
// run.
func (s *System) Snapshot() Snapshot {
	now := s.cfg.Clock.Now()
	sn := Snapshot{
		At:             now,
		Mode:           s.cfg.Mode.String(),
		BatchPolicy:    s.cfg.BatchPolicy.String(),
		Finished:       s.Finished(),
		Crashed:        s.Crashed(),
		Heartbeat:      s.Heartbeat(),
		HeartbeatEvery: s.cfg.HeartbeatEvery,
	}
	s.liveMu.Lock()
	elapsed := now - s.start
	s.liveMu.Unlock()
	for _, st := range s.snapshotStreams() {
		ss := StreamSnapshot{ID: st.spec.ID, Frames: st.spec.Frames}
		s.recMu.Lock()
		ss.Ingested = st.ingested
		ss.Drops = st.counts
		ss.CurLag = st.curLag
		ss.MaxLag = st.ingestLag
		ss.IngestDone = st.ingestDone
		ss.Stopped = st.stop
		s.recMu.Unlock()
		for _, n := range ss.Drops {
			ss.Decided += n
		}
		ss.SDDQ = qsnap(st.sddQ.Name(), st.sddQ.Stats())
		ss.SNMQ = qsnap(st.snmQ.Name(), st.snmQ.Stats())
		ss.TYQ = qsnap(st.tyQ.Name(), st.tyQ.Stats())
		if st.spill != nil {
			ss.SpillPending = st.spill.Pending()
			ss.Spilled = st.spill.Stats().Writes
		}
		ss.Backlog = ss.SDDQ.Depth + ss.SpillPending

		sn.Ingested += ss.Ingested
		sn.Decided += ss.Decided
		for i, n := range ss.Drops {
			sn.Drops[i] += n
		}
		if !ss.IngestDone && !ss.Stopped {
			sn.LiveStreams++
			if ss.CurLag > sn.WorstLag {
				sn.WorstLag = ss.CurLag
			}
		}
		if ss.Backlog > sn.WorstBacklog {
			sn.WorstBacklog = ss.Backlog
		}
		if ss.SNMQ.Depth >= ss.SNMQ.Cap || ss.TYQ.Depth >= ss.TYQ.Cap {
			sn.Overloaded = true
		}
		sn.Streams = append(sn.Streams, ss)
	}
	sn.InFlight = sn.Ingested - sn.Decided
	sn.Orphaned = s.orphanCtr.Value()
	sn.RefCanvases = s.canvasCtr.Value()
	sn.RefQ = qsnap(s.refQ.Name(), s.refQ.Stats())
	sn.TYoloRate = s.tyMeter.Rate(now)
	sn.SNMBatchCount = s.snmBatch.Count()
	sn.SNMBatchMean = s.snmBatch.Mean()
	sn.SNMBatchMax = s.snmBatch.Max()
	sn.SNMBatchDist = s.snmBatch.Counts()

	sn.Devices = append(sn.Devices, devSnap("cpu", "cpu", s.cpu.Stats(), elapsed))
	for i, g := range s.filterGPUs {
		sn.Devices = append(sn.Devices, devSnap(fmt.Sprintf("gpu%d", i), "gpu", g.Stats(), elapsed))
	}
	sn.Devices = append(sn.Devices,
		devSnap(fmt.Sprintf("gpu%d", len(s.filterGPUs)), "gpu", s.gpu1.Stats(), elapsed))
	if s.disk != nil {
		sn.Devices = append(sn.Devices, devSnap("ssd", "disk", s.disk.Stats(), elapsed))
	}
	sn.Metrics = s.reg.Export(now)
	return sn
}

// devSnap builds a device view; it lives here (not in package device) so
// the busy-fraction denominator is the system's elapsed run time.
func devSnap(name, kind string, st device.Stats, elapsed time.Duration) DeviceSnapshot {
	d := DeviceSnapshot{
		Name: name, Kind: kind,
		InUse: st.InUse, Slots: st.Slots,
		Busy: st.Busy, Served: st.Served, Switches: st.Switches,
	}
	if elapsed > 0 && st.Slots > 0 {
		d.BusyFraction = float64(st.Busy) / (float64(st.Slots) * float64(elapsed))
	}
	return d
}

// Monitor registers a periodic observer process on the system's clock:
// every interval it takes a Snapshot and hands it to fn, until the
// system finishes (the final sample observes the finished state). It
// must be called before the clock runs the world, and works identically
// under RealClock and VirtualClock.
func (s *System) Monitor(every time.Duration, fn func(Snapshot)) {
	if every <= 0 {
		panic("pipeline: Monitor requires a positive interval")
	}
	s.cfg.Clock.Go("monitor", func() {
		for {
			s.cfg.Clock.Sleep(every)
			sn := s.Snapshot()
			fn(sn)
			if sn.Finished {
				return
			}
		}
	})
}

// JSON renders the snapshot as one JSON line (durations in nanoseconds).
func (sn Snapshot) JSON() string {
	b, err := json.Marshal(sn)
	if err != nil {
		return fmt.Sprintf(`{"error":%q}`, err.Error())
	}
	return string(b)
}

// String renders a compact multi-line text dump for the -metrics flag.
func (sn Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%v %s/%s ingested=%d decided=%d inflight=%d live=%d",
		sn.At.Round(time.Millisecond), sn.Mode, sn.BatchPolicy,
		sn.Ingested, sn.Decided, sn.InFlight, sn.LiveStreams)
	if sn.Finished {
		b.WriteString(" finished")
	}
	if sn.Crashed {
		b.WriteString(" CRASHED")
	}
	fmt.Fprintf(&b, "\n  signals: t-yolo=%.1ffps lag=%v backlog=%d overloaded=%v",
		sn.TYoloRate, sn.WorstLag.Round(time.Millisecond), sn.WorstBacklog, sn.Overloaded)
	fmt.Fprintf(&b, "\n  drops: sdd=%d snm=%d t-yolo=%d detected=%d closed=%d error=%d shed=%d admission=%d orphaned=%d",
		sn.Drops[DropSDD], sn.Drops[DropSNM], sn.Drops[DropTYolo],
		sn.Drops[Detected], sn.Drops[DropClosed], sn.Drops[DropError],
		sn.Drops[DropShed], sn.Drops[DropAdmission], sn.Orphaned)
	fmt.Fprintf(&b, "\n  snm batches: n=%d mean=%.1f max=%d", sn.SNMBatchCount, sn.SNMBatchMean, sn.SNMBatchMax)
	b.WriteString("\n  devices:")
	for _, d := range sn.Devices {
		fmt.Fprintf(&b, " %s=%.0f%%(%d/%d)", d.Name, 100*d.BusyFraction, d.InUse, d.Slots)
	}
	for _, ss := range sn.Streams {
		fmt.Fprintf(&b, "\n  stream %d: %d/%d in %d/%d decided, q sdd=%d/%d snm=%d/%d ty=%d/%d blocked=%d lag=%v",
			ss.ID, ss.Ingested, ss.Frames, ss.Decided, ss.Ingested,
			ss.SDDQ.Depth, ss.SDDQ.Cap, ss.SNMQ.Depth, ss.SNMQ.Cap, ss.TYQ.Depth, ss.TYQ.Cap,
			ss.SDDQ.BlockedPuts+ss.SNMQ.BlockedPuts+ss.TYQ.BlockedPuts,
			ss.CurLag.Round(time.Millisecond))
		if ss.Spilled > 0 {
			fmt.Fprintf(&b, " spilled=%d(pending %d)", ss.Spilled, ss.SpillPending)
		}
	}
	fmt.Fprintf(&b, "\n  ref q: %d/%d (blocked=%d)", sn.RefQ.Depth, sn.RefQ.Cap, sn.RefQ.BlockedPuts)
	return b.String()
}
