package pipeline

// Regression tests for the refStage orphan-frame leak: a frame that
// reaches the reference queue after its stream was retired or migrated
// has no record slot, but its pooled pixel plane must still be released
// and its trace must still reach the tracer's terminal. Before the fix
// both orphan branches in refStage continued without either, leaking
// the plane and the refcounted FrameTrace for every orphan.

import (
	"bytes"
	"testing"
	"time"

	"ffsva/internal/frame"
	"ffsva/internal/trace"
	"ffsva/internal/vclock"
)

// runWithOrphans runs a small system while a clock process injects
// frames whose stream the system has never heard of — the in-flight
// residue of a retired/migrated stream — straight into the reference
// queue. It returns the snapshot, the pool get/put delta over the run,
// and the JSONL trace export.
func runWithOrphans(t *testing.T, orphans int, consolidate bool) (Snapshot, int64, []byte) {
	t.Helper()
	clk := vclock.NewVirtual()
	cfg := DefaultConfig(clk)
	cfg.DisableSDD = true
	cfg.DisableSNM = true
	cfg.Consolidate = consolidate
	tr := trace.New(trace.Options{})
	cfg.Tracer = tr

	getsBefore, putsBefore := frame.PoolStats()
	sys := New(cfg, []StreamSpec{rawSpec(0, 90)})
	sys.Start()
	clk.Go("migrated-stream-residue", func() {
		// Inject early: the reference queue closes once the last T-YOLO
		// worker exits, and the whole offline run spans well under a
		// second of virtual time.
		clk.Sleep(50 * time.Millisecond)
		for i := 0; i < orphans; i++ {
			f := frame.NewPooled(64, 48)
			for j := range f.Pix {
				f.Pix[j] = 0
			}
			f.StreamID = 999 // no such stream on this instance
			f.Seq = int64(i)
			f.Captured = clk.Now()
			f.Trace = tr.StartFrame(f.StreamID, f.Seq, 0, clk.Now())
			if !sys.refQ.Put(f) {
				t.Errorf("orphan %d: reference queue already closed; inject earlier", i)
				f.Trace = nil
				f.Release()
			}
			clk.Sleep(5 * time.Millisecond)
		}
	})
	clk.Run()
	sys.Report() // conservation must still hold for the owned stream
	sn := sys.Snapshot()

	getsAfter, putsAfter := frame.PoolStats()
	delta := (getsAfter - getsBefore) - (putsAfter - putsBefore)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("trace export: %v", err)
	}
	return sn, delta, buf.Bytes()
}

// TestOrphanConservation fails on the pre-fix code: the orphan branches
// counted the frame but released nothing, so the pool get/put balance
// drifted by one per orphan and the orphans' traces never finished.
func TestOrphanConservation(t *testing.T) {
	const orphans = 7
	for _, consolidate := range []bool{false, true} {
		sn, delta, jsonl := runWithOrphans(t, orphans, consolidate)
		if sn.Orphaned != orphans {
			t.Fatalf("consolidate=%v: Orphaned = %d, want %d", consolidate, sn.Orphaned, orphans)
		}
		if delta != 0 {
			t.Fatalf("consolidate=%v: pool gets-puts drifted by %d over the run: orphaned frames were not released",
				consolidate, delta)
		}
		want := orphans
		if got := bytes.Count(jsonl, []byte(`"disposition":"orphaned"`)); got != want {
			t.Fatalf("consolidate=%v: %d orphaned traces reached the tracer terminal, want %d",
				consolidate, got, want)
		}
	}
}

// TestOrphanDeterminism pins byte-identical event logs across two
// seeded runs that orphan frames mid-flight, under both reference
// modes.
func TestOrphanDeterminism(t *testing.T) {
	for _, consolidate := range []bool{false, true} {
		_, _, a := runWithOrphans(t, 5, consolidate)
		_, _, b := runWithOrphans(t, 5, consolidate)
		if !bytes.Equal(a, b) {
			t.Fatalf("consolidate=%v: two seeded runs with orphans diverged", consolidate)
		}
	}
}
