package pipeline

// Object-level consolidation of the reference tier (Rivas et al.,
// "Large-Scale Video Analytics through Object-Level Consolidation"; see
// DESIGN.md §15). Instead of one full-frame reference inference per
// surviving frame, the consolidator gathers survivors from across
// streams, crops T-YOLO's candidate boxes with padding, shelf-packs the
// crops into fixed canvases, and charges one reference inference per
// canvas — multiplying the reference GPU's effective capacity, since a
// canvas typically carries crops from several frames.
//
// Determinism: frames are consumed from the reference queue in arrival
// order (deterministic under the virtual clock), crops are packed
// strictly in that order with a first-come shelf heuristic (no sorting,
// no area heuristics), and the top-up wait is a fixed modeled duration.
// Two seeded runs therefore gather identical rounds, build identical
// canvases, and charge identical device time.

import (
	"ffsva/internal/detect"
	"ffsva/internal/device"
	"ffsva/internal/frame"
	"ffsva/internal/imgproc"
	"ffsva/internal/trace"
)

// refConsolidatedLoop drains the reference queue in consolidation
// rounds: gather up to ConsolidateFrames survivors (topping up for
// ConsolidateWait when the first grab comes back short), resolve their
// streams, pack, infer, unpack.
func (s *System) refConsolidatedLoop() {
	clk := s.cfg.Clock
	limit := s.cfg.ConsolidateFrames
	for {
		batch := s.refQ.GetUpTo(limit)
		if len(batch) == 0 {
			break // queue closed and drained
		}
		if len(batch) < limit && s.cfg.ConsolidateWait > 0 {
			// Deadline-bounded top-up: one fixed modeled wait, then take
			// whatever arrived. A single sleep (rather than a poll loop)
			// keeps the round's schedule deterministic.
			clk.Sleep(s.cfg.ConsolidateWait)
			for len(batch) < limit {
				f, ok := s.refQ.TryGet()
				if !ok {
					break
				}
				batch = append(batch, f)
			}
		}
		s.consolidateRound(batch)
	}
}

// consolidateRound runs one gather-pack-infer-unpack cycle over the
// batch. Every frame in the batch reaches a terminal: finishCounts for
// owned frames, finishOrphan for frames whose stream retired while they
// were in flight, finish(DropError) when the instance crashed.
func (s *System) consolidateRound(batch []*frame.Frame) {
	clk := s.cfg.Clock

	// Resolve streams first: orphans and crash drops cost no pack or
	// inference work.
	owners := make([]*streamState, len(batch))
	live := batch[:0:0]
	crashed := s.Crashed()
	for _, f := range batch {
		st := s.lookupStream(f.StreamID, f.Seq)
		if st == nil {
			s.finishOrphan(f)
			continue
		}
		if crashed {
			s.finish(st, f, DropError, -1)
			continue
		}
		owners[len(live)] = st
		live = append(live, f)
	}
	if len(live) == 0 {
		return
	}
	owners = owners[:len(live)]

	// Pack: crop every candidate with padding and shelf-place it onto
	// the open canvas, opening a new canvas when a crop does not fit.
	// The canvas pixels are genuinely assembled (the reference detector
	// is an oracle here, but the geometry and memory traffic are real).
	canvas := s.cfg.ConsolidateCanvas
	pad := s.cfg.ConsolidatePad
	packer := imgproc.NewShelfPacker(canvas, canvas)
	canvases := 1
	dst := imgproc.GetGray(canvas, canvas)
	for i := range dst.Pix {
		dst.Pix[i] = 0
	}
	crops := make([][]imgproc.Rect, len(live))
	totalCrops := 0
	packStart := clk.Now()
	for i, f := range live {
		g := imgproc.FromFrame(f)
		for _, c := range f.Cands {
			r, ok := imgproc.PadRect(imgproc.Rect{X: c.X, Y: c.Y, W: c.W, H: c.H}, pad, f.W, f.H)
			if !ok {
				continue
			}
			if r.W > canvas || r.H > canvas {
				// A crop larger than the canvas is clamped to it; the
				// coverage test below charges the truncation honestly.
				r.W = min(r.W, canvas)
				r.H = min(r.H, canvas)
			}
			x, y, placed := packer.Place(r.W, r.H)
			if !placed {
				// Canvas full: open a fresh one (the full one is charged
				// with the rest in the inference phase).
				canvases++
				packer = imgproc.NewShelfPacker(canvas, canvas)
				for j := range dst.Pix {
					dst.Pix[j] = 0
				}
				x, y, _ = packer.Place(r.W, r.H)
			}
			imgproc.CropInto(dst, g, r, x, y)
			crops[i] = append(crops[i], r)
			totalCrops++
		}
	}
	if s.cfg.ChargeCosts && totalCrops > 0 {
		s.cpu.Use(device.ModelPack, totalCrops, s.cfg.Costs)
	}
	packEnd := clk.Now()
	for _, f := range live {
		f.Trace.AddSpan(trace.KPack, packStart, packEnd, s.cpu.Name, len(live))
	}

	// Infer: one reference charge per canvas, not per frame — this is
	// the whole consolidation dividend.
	refStart := clk.Now()
	for k := 0; k < canvases; k++ {
		s.canvasCtr.Inc()
		if s.cfg.ChargeCosts {
			s.gpu1.Use(device.ModelRef, 1, s.cfg.Costs)
		}
	}
	refEnd := clk.Now()

	// Unpack: translate canvas-level detections back into per-frame,
	// per-stream counts. The reference oracle detects on the full frame;
	// the crop-coverage clip models what a detector that only saw the
	// packed crops could have found — an object not covered by any crop
	// (or truncated below MinCover by a crop boundary) is lost to
	// consolidation, which is exactly the accuracy delta the lab scores.
	minCover := s.cfg.ConsolidateMinCover
	for i, f := range live {
		st := owners[i]
		f.Trace.AddSpan(trace.KRef, refStart, refEnd, s.gpu1.Name, len(live))
		dets := s.cfg.Ref.Detect(f)
		fullCount := detect.Count(dets, st.spec.Target, s.cfg.RefConf)
		rects := crops[i]
		count := 0
		for _, d := range dets {
			if d.Class != st.spec.Target || d.Conf < s.cfg.RefConf {
				continue
			}
			if imgproc.CoverFrac(d.Box, rects) >= minCover {
				count++
			}
		}
		t0 := clk.Now()
		f.Trace.AddSpan(trace.KUnpack, t0, t0, s.cpu.Name, len(crops[i]))
		s.refServed.Inc()
		s.finishCounts(st, f, Detected, count, fullCount)
	}
	dst.Release()
}
