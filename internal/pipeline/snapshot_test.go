package pipeline_test

import (
	"encoding/json"
	"testing"
	"time"

	"ffsva/internal/device"
	"ffsva/internal/pipeline"
	"ffsva/internal/vclock"
)

// TestSnapshotConservation is the observability acceptance test: a
// monitored online run whose every sample satisfies the frame-ledger
// invariants, and whose final sample shows per-stage drop counts summing
// exactly to the frames ingested.
func TestSnapshotConservation(t *testing.T) {
	clk := vclock.NewVirtual()
	const streams, frames = 3, 300
	sys := build(t, clk, streams, 0.2, frames, func(c *pipeline.Config) {
		c.Mode = pipeline.Online
	})
	var samples []pipeline.Snapshot
	sys.Monitor(500*time.Millisecond, func(sn pipeline.Snapshot) {
		samples = append(samples, sn)
	})
	rep := sys.Run()
	checkConservation(t, rep)

	if len(samples) < 2 {
		t.Fatalf("monitor took %d samples, want several", len(samples))
	}
	last := samples[len(samples)-1]
	if !last.Finished {
		t.Fatal("final sample not marked finished")
	}
	for i, sn := range samples {
		// Ledger invariant at every instant: decided + in-flight = ingested.
		var disposed int64
		for _, c := range sn.Drops {
			disposed += c
		}
		if disposed != sn.Decided {
			t.Fatalf("sample %d: drops sum %d != decided %d", i, disposed, sn.Decided)
		}
		if sn.Decided+sn.InFlight != sn.Ingested {
			t.Fatalf("sample %d: decided %d + in-flight %d != ingested %d",
				i, sn.Decided, sn.InFlight, sn.Ingested)
		}
		for _, ss := range sn.Streams {
			if ss.Decided > ss.Ingested {
				t.Fatalf("sample %d stream %d: decided %d > ingested %d", i, ss.ID, ss.Decided, ss.Ingested)
			}
		}
		for _, d := range sn.Devices {
			if d.BusyFraction < 0 || d.BusyFraction > 1.000001 {
				t.Fatalf("sample %d device %s: busy fraction %v", i, d.Name, d.BusyFraction)
			}
		}
		if sn.Orphaned != 0 {
			t.Fatalf("sample %d: %d orphaned frames", i, sn.Orphaned)
		}
	}
	// Final ledger: every ingested frame has exactly one disposition, and
	// every frame was ingested.
	var disposed int64
	for _, c := range last.Drops {
		disposed += c
	}
	if want := int64(streams * frames); last.Ingested != want || disposed != want {
		t.Fatalf("final ledger: ingested %d, disposed %d, want %d", last.Ingested, disposed, want)
	}
	if last.InFlight != 0 || last.LiveStreams != 0 {
		t.Fatalf("final sample: in-flight %d, live %d, want 0/0", last.InFlight, last.LiveStreams)
	}
	// Per-stream final ledger.
	for _, ss := range last.Streams {
		var sum int64
		for _, c := range ss.Drops {
			sum += c
		}
		if sum != ss.Ingested || ss.Ingested != int64(ss.Frames) {
			t.Fatalf("stream %d final ledger: drops %v sum %d, ingested %d, frames %d",
				ss.ID, ss.Drops, sum, ss.Ingested, ss.Frames)
		}
	}
	// The registry export travels with the snapshot.
	found := false
	for _, m := range last.Metrics {
		if m.Name == "frames_ingested_total" {
			found = true
			if int64(m.Value) != int64(streams*frames) {
				t.Fatalf("frames_ingested_total = %v", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("registry export missing frames_ingested_total")
	}
}

// TestSnapshotJSON verifies the -metrics JSON form is valid and carries
// the control signals.
func TestSnapshotJSON(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := build(t, clk, 1, 0.2, 150, func(c *pipeline.Config) { c.Mode = pipeline.Online })
	var last pipeline.Snapshot
	sys.Monitor(time.Second, func(sn pipeline.Snapshot) { last = sn })
	sys.Run()
	var m map[string]any
	if err := json.Unmarshal([]byte(last.JSON()), &m); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	for _, key := range []string{"tyolo_fps", "worst_lag", "drops", "streams", "devices", "finished"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("snapshot JSON missing %q", key)
		}
	}
	if len(last.String()) == 0 {
		t.Fatal("empty text rendering")
	}
}

// TestWorstLagExcludesFinishedStreams is the regression test for the
// overload-signal bug: a stream that has finished ingesting can no longer
// be late, so its last observed lag must not keep the instance looking
// overloaded (the cluster manager would re-forward streams off an idle
// instance forever).
func TestWorstLagExcludesFinishedStreams(t *testing.T) {
	clk := vclock.NewVirtual()
	costs := device.Calibrated()
	// A slow reference model guarantees real lag while ingest runs.
	c := costs[device.ModelRef]
	c.PerFrame = 150 * time.Millisecond
	costs[device.ModelRef] = c
	sys := build(t, clk, 1, 1.0, 300, func(cfg *pipeline.Config) {
		cfg.Mode = pipeline.Online
		cfg.Costs = costs
		cfg.IngestBuffer = 60
	})
	sawLag := false
	var final pipeline.Snapshot
	sys.Monitor(time.Second, func(sn pipeline.Snapshot) {
		if sn.WorstLag > 0 {
			sawLag = true
		}
		final = sn
	})
	rep := sys.Run()
	checkConservation(t, rep)
	if !sawLag {
		t.Fatal("overload configuration never showed ingest lag; test is vacuous")
	}
	if got := sys.WorstLag(); got != 0 {
		t.Fatalf("WorstLag = %v after all ingest finished, want 0", got)
	}
	if final.WorstLag != 0 || final.LiveStreams != 0 {
		t.Fatalf("final sample: lag %v live %d, want 0/0", final.WorstLag, final.LiveStreams)
	}
}

// TestMonitorRealClock proves the same monitor runs under the real clock
// (goroutines + wall time) and still terminates with a finished sample.
func TestMonitorRealClock(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time emulation sleeps wall-clock time")
	}
	clk := vclock.NewReal()
	sys := build(t, clk, 1, 0.3, 60, nil)
	var samples []pipeline.Snapshot
	sys.Monitor(100*time.Millisecond, func(sn pipeline.Snapshot) {
		samples = append(samples, sn)
	})
	rep := sys.Run()
	checkConservation(t, rep)
	if len(samples) == 0 {
		t.Fatal("no samples under real clock")
	}
	if !samples[len(samples)-1].Finished {
		t.Fatal("final real-clock sample not finished")
	}
}
