package pipeline_test

import (
	"testing"
	"time"

	"ffsva/internal/detect"
	"ffsva/internal/device"
	"ffsva/internal/lab"
	"ffsva/internal/pipeline"
	"ffsva/internal/vclock"
)

// build assembles a virtual-clock system of n identical car streams.
func build(t *testing.T, clk vclock.Clock, n int, tor float64, frames int, mutate func(*pipeline.Config)) *pipeline.System {
	t.Helper()
	cam, err := lab.CarCamera(tor)
	if err != nil {
		t.Fatal(err)
	}
	tg := detect.NewTinyGrid(detect.DefaultTinyGridConfig())
	cfg := pipeline.DefaultConfig(clk)
	if mutate != nil {
		mutate(&cfg)
	}
	specs := make([]pipeline.StreamSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = cam.Stream(i, tg, lab.StreamOptions{Seed: int64(1000 + i), Frames: frames})
	}
	return pipeline.New(cfg, specs)
}

func checkConservation(t *testing.T, rep *pipeline.Report) {
	t.Helper()
	for _, sr := range rep.Streams {
		var sum int64
		for _, c := range sr.Counts {
			sum += c
		}
		if sum != int64(sr.Frames) {
			t.Errorf("stream %d: dispositions %v sum %d, want %d", sr.ID, sr.Counts, sum, sr.Frames)
		}
		for seq, rec := range sr.Records {
			if !rec.Done {
				t.Fatalf("stream %d: frame %d never decided", sr.ID, seq)
			}
			if rec.Decided < rec.Captured {
				t.Fatalf("stream %d frame %d: decided %v before captured %v", sr.ID, seq, rec.Decided, rec.Captured)
			}
		}
		// Stage-to-stage conservation.
		if sr.SDDStats.Processed != sr.Ingested {
			t.Errorf("stream %d: SDD processed %d != ingested %d", sr.ID, sr.SDDStats.Processed, sr.Ingested)
		}
		if sr.SNMStats.Processed != sr.SDDStats.Passed {
			t.Errorf("stream %d: SNM processed %d != SDD passed %d", sr.ID, sr.SNMStats.Processed, sr.SDDStats.Passed)
		}
		if sr.TYoloStats.Processed != sr.SNMStats.Passed {
			t.Errorf("stream %d: T-YOLO processed %d != SNM passed %d", sr.ID, sr.TYoloStats.Processed, sr.SNMStats.Passed)
		}
	}
	var refIn int64
	for _, sr := range rep.Streams {
		refIn += sr.TYoloStats.Passed
	}
	if rep.StageProcessed[4] != refIn {
		t.Errorf("ref processed %d != T-YOLO passed %d", rep.StageProcessed[4], refIn)
	}
}

func TestOfflineSingleStream(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := build(t, clk, 1, 0.103, 1200, nil)
	rep := sys.Run()
	checkConservation(t, rep)
	if rep.Throughput < 100 {
		t.Errorf("offline throughput %.1f FPS, expected well above real time", rep.Throughput)
	}
	// The cascade must be filtering: the reference model sees a small
	// fraction of frames at a 10% TOR.
	if ratio := rep.StageRatio(4); ratio > 0.35 {
		t.Errorf("reference stage saw %.2f of frames at TOR 0.1", ratio)
	}
	t.Logf("offline 1 stream: %v", rep)
}

func TestOnlineKeepsRealTime(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := build(t, clk, 4, 0.103, 450, func(c *pipeline.Config) { c.Mode = pipeline.Online })
	rep := sys.Run()
	checkConservation(t, rep)
	if !rep.Realtime {
		for _, sr := range rep.Streams {
			t.Logf("stream %d lag %v", sr.ID, sr.IngestLag)
		}
		t.Fatal("4 streams at TOR 0.1 should hold real time")
	}
	// Online throughput equals the capture rate.
	if rep.PerStreamFPS < 28 || rep.PerStreamFPS > 32 {
		t.Errorf("per-stream FPS = %.1f, want ~30", rep.PerStreamFPS)
	}
}

func TestOnlineOverloadDetected(t *testing.T) {
	clk := vclock.NewVirtual()
	costs := device.Calibrated()
	// A reference model 10× slower guarantees overload even on 1 stream.
	c := costs[device.ModelRef]
	c.PerFrame = 150 * time.Millisecond
	costs[device.ModelRef] = c
	sys := build(t, clk, 1, 1.0, 450, func(cfg *pipeline.Config) {
		cfg.Mode = pipeline.Online
		cfg.Costs = costs
		cfg.IngestBuffer = 60 // 2 s: the 15 s run must overflow it
	})
	rep := sys.Run()
	checkConservation(t, rep)
	if rep.Realtime {
		t.Fatal("overloaded configuration reported as real-time")
	}
}

func TestQueueDepthsRespected(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := build(t, clk, 2, 0.3, 600, nil)
	rep := sys.Run()
	checkConservation(t, rep)
	_ = rep
}

func TestDeterministicUnderVirtualClock(t *testing.T) {
	run := func() (float64, time.Duration) {
		clk := vclock.NewVirtual()
		sys := build(t, clk, 2, 0.2, 400, nil)
		rep := sys.Run()
		return rep.Throughput, rep.LatencyMean
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", t1, l1, t2, l2)
	}
}

func TestDynamicBatchLowersLatency(t *testing.T) {
	run := func(p pipeline.BatchPolicy, batch int) *pipeline.Report {
		clk := vclock.NewVirtual()
		sys := build(t, clk, 3, 0.2, 500, func(c *pipeline.Config) {
			c.Mode = pipeline.Online
			c.BatchPolicy = p
			c.BatchSize = batch
			c.DepthSNM = 64
		})
		return sys.Run()
	}
	fb := run(pipeline.BatchFeedback, 30)
	dyn := run(pipeline.BatchDynamic, 30)
	if dyn.LatencyMean >= fb.LatencyMean {
		t.Errorf("dynamic batch latency %v not below feedback %v at batch 30",
			dyn.LatencyMean, fb.LatencyMean)
	}
	t.Logf("feedback: lat=%v thpt=%.0f; dynamic: lat=%v thpt=%.0f",
		fb.LatencyMean, fb.Throughput, dyn.LatencyMean, dyn.Throughput)
}

func TestStaticBatchThroughputGrowsWithBatch(t *testing.T) {
	run := func(batch int) *pipeline.Report {
		clk := vclock.NewVirtual()
		sys := build(t, clk, 2, 0.103, 600, func(c *pipeline.Config) {
			c.BatchPolicy = pipeline.BatchStatic
			c.BatchSize = batch
		})
		return sys.Run()
	}
	small := run(1)
	big := run(30)
	// At low TOR the SNM stage is the GPU-0 bottleneck, so amortizing
	// its activation cost must show up in throughput.
	if big.Throughput <= small.Throughput {
		t.Errorf("static batch 30 throughput %.0f not above batch 1 %.0f",
			big.Throughput, small.Throughput)
	}
}

func TestSharedTYoloFairness(t *testing.T) {
	// With several identical streams, the shared T-YOLO must serve all
	// of them: every stream's T-YOLO queue drains and per-stream
	// detected counts are in the same ballpark.
	clk := vclock.NewVirtual()
	sys := build(t, clk, 4, 0.4, 500, nil)
	rep := sys.Run()
	checkConservation(t, rep)
	var lo, hi int64 = 1 << 62, -1
	for _, sr := range rep.Streams {
		n := sr.TYoloStats.Processed
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 {
		t.Fatal("a stream was starved at the shared T-YOLO stage")
	}
	if float64(hi) > 3*float64(lo) {
		t.Errorf("T-YOLO service imbalance: min %d max %d", lo, hi)
	}
}

func TestRealClockSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time emulation sleeps wall-clock time")
	}
	clk := vclock.NewReal()
	sys := build(t, clk, 1, 0.3, 120, func(c *pipeline.Config) {
		c.Clock = clk
	})
	rep := sys.Run()
	checkConservation(t, rep)
	if rep.Throughput <= 0 {
		t.Fatal("no throughput under real clock")
	}
	t.Logf("real clock: %v", rep)
}

func TestReportStageRatiosMonotone(t *testing.T) {
	clk := vclock.NewVirtual()
	sys := build(t, clk, 1, 0.25, 800, nil)
	rep := sys.Run()
	prev := 1.0
	for i := 0; i < 5; i++ {
		r := rep.StageRatio(i)
		if r > prev+1e-9 {
			t.Fatalf("stage %d ratio %.3f exceeds previous %.3f", i, r, prev)
		}
		prev = r
	}
}

// TestFilterGPUsSpreadLoad verifies §4.3.2 multi-GPU distribution at the
// unit level: with two filter GPUs, both carry work and a filter-bound
// workload runs markedly faster.
func TestFilterGPUsSpreadLoad(t *testing.T) {
	cam, err := lab.CarCamera(0.5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(gpus int) *pipeline.Report {
		clk := vclock.NewVirtual()
		cfg := pipeline.DefaultConfig(clk)
		cfg.FilterGPUs = gpus
		tg := detect.NewTinyGrid(detect.DefaultTinyGridConfig())
		specs := make([]pipeline.StreamSpec, 4)
		for i := range specs {
			// A high object-count threshold keeps the reference model
			// light, so the filter GPUs are the binding stage.
			specs[i] = cam.Stream(i, tg, lab.StreamOptions{
				Seed: int64(1500 + i), Frames: 600, NumberOfObjects: 3,
			})
		}
		return pipeline.New(cfg, specs).Run()
	}
	one := run(1)
	two := run(2)
	checkConservation(t, two)
	if len(two.FilterGPUUtils) != 2 {
		t.Fatalf("FilterGPUUtils = %v", two.FilterGPUUtils)
	}
	for i, u := range two.FilterGPUUtils {
		if u <= 0.05 {
			t.Errorf("filter GPU %d idle (%.2f); load not distributed", i, u)
		}
	}
	if two.Throughput < one.Throughput*1.2 {
		t.Errorf("2 filter GPUs: %.0f FPS vs %.0f with 1; expected a clear gain",
			two.Throughput, one.Throughput)
	}
}
