package detect

import (
	"testing"

	"ffsva/internal/frame"
	"ffsva/internal/vidgen"
)

func BenchmarkTinyGridDetect(b *testing.B) {
	cfg := vidgen.Small(1, frame.ClassCar, 0.5)
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	tg.SetBackground(cfg.StreamID, s.Background())
	frames := vidgen.Generate(s, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Detect(frames[i%len(frames)])
	}
}

func BenchmarkOracleDetect(b *testing.B) {
	s := vidgen.New(vidgen.Small(2, frame.ClassCar, 0.5))
	frames := vidgen.Generate(s, 64)
	o := NewOracle(DefaultOracleConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Detect(frames[i%len(frames)])
	}
}
