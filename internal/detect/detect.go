// Package detect provides the two object detectors FFS-VA relies on:
//
//   - TinyGrid substitutes for Tiny-YOLO-Voc (T-YOLO, paper §3.2.3): a
//     generic, multi-class, grid-based detector shared by all streams. It
//     divides the input into the same 13×13 grid with at most 5 boxes per
//     cell, counts target objects, and — deliberately — reproduces
//     T-YOLO's systematic weaknesses the paper reports: partially visible
//     objects at frame edges are misclassified or rejected, and dense
//     crowds of small objects merge and undercount.
//
//   - Oracle substitutes for the full-feature reference model (YOLOv2):
//     it reads the synthetic ground truth with a small deterministic miss
//     rate. The paper uses YOLOv2 both as accuracy ground truth and as a
//     fixed per-frame GPU cost; detection quality of YOLOv2 itself is not
//     under evaluation, so an oracle preserves both roles.
package detect

import (
	"hash/fnv"
	"sync"

	"ffsva/internal/frame"
	"ffsva/internal/imgproc"
	"ffsva/internal/par"
)

// Detection is one detected object instance.
type Detection struct {
	Box   imgproc.Rect
	Class frame.Class
	Conf  float64
}

// Detector locates object instances in a frame.
type Detector interface {
	Detect(f *frame.Frame) []Detection
}

// Count returns how many detections of class c have confidence of at
// least confThresh (the paper uses 0.2 for T-YOLO).
func Count(dets []Detection, c frame.Class, confThresh float64) int {
	n := 0
	for _, d := range dets {
		if d.Class == c && d.Conf >= confThresh {
			n++
		}
	}
	return n
}

// GridSize is the detection grid dimension used by T-YOLO (13×13 cells).
const GridSize = 13

// MaxBoxesPerCell bounds predictions per grid cell, as in T-YOLO.
const MaxBoxesPerCell = 5

// TinyGridConfig tunes the TinyGrid detector.
type TinyGridConfig struct {
	// InputSize is the square side the frame is resized to before
	// detection. The paper uses 416; the default here is 208, which
	// preserves the 13×13 grid geometry at one quarter the pixel cost.
	InputSize int
	// DiffThresh is the foreground binarization threshold in gray
	// levels.
	DiffThresh uint8
	// MinArea is the minimum component area (at InputSize scale) kept as
	// a detection; smaller blobs are noise or sub-detectable objects.
	MinArea int
	// BGAlpha is the per-frame background EMA update rate.
	BGAlpha float64
	// ConfNorm is the mean-foreground-difference value mapped to
	// confidence 1.0.
	ConfNorm float64
}

// DefaultTinyGridConfig returns the configuration used across the
// evaluation.
func DefaultTinyGridConfig() TinyGridConfig {
	return TinyGridConfig{
		InputSize:  208,
		DiffThresh: 22,
		MinArea:    30,
		BGAlpha:    0.04,
		ConfNorm:   45,
	}
}

// TinyGrid is the shared generic detector. It keeps a per-stream running
// background estimate (fixed-viewpoint assumption, as in the paper) and
// detects objects as foreground components classified by geometry.
//
// TinyGrid is safe for concurrent use across distinct streams: with
// multiple filter GPUs the pipeline runs one T-YOLO worker per GPU, each
// serving a disjoint stream partition, so a mutex guards only the shared
// background map.
type TinyGrid struct {
	cfg TinyGridConfig
	mu  sync.Mutex
	bg  map[int]*bgState
}

type bgState struct {
	ema    []float64 // background estimate at InputSize scale
	frames int
}

// NewTinyGrid creates a detector with the given configuration.
func NewTinyGrid(cfg TinyGridConfig) *TinyGrid {
	if cfg.InputSize <= 0 {
		cfg = DefaultTinyGridConfig()
	}
	return &TinyGrid{cfg: cfg, bg: make(map[int]*bgState)}
}

// Unregister drops a stream's background state. The cluster calls it
// once a migrated-away (or crashed) stream's fragments have fully
// drained from an instance — without it every re-forward would leak the
// victim's background model into the source instance's detector
// forever. It must not run while the stream still has in-flight frames
// there: Detect would lazily re-create the state from the next frame.
func (t *TinyGrid) Unregister(streamID int) {
	t.mu.Lock()
	delete(t.bg, streamID)
	t.mu.Unlock()
}

// InputSize returns the square side the detector resizes frames to
// before detecting: its Detection boxes are at this scale, not the
// frame's. Consumers that need frame coordinates (the reference tier's
// crop-and-pack consolidation) rescale with it.
func (t *TinyGrid) InputSize() int { return t.cfg.InputSize }

// Registered reports whether a background model is held for the stream.
func (t *TinyGrid) Registered(streamID int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.bg[streamID]
	return ok
}

// SetBackground seeds the background model for a stream from a known
// background image (the trainer does this from labeled background
// frames, mirroring how the paper trains stream-specialized models).
func (t *TinyGrid) SetBackground(streamID int, bg *imgproc.Gray) {
	small := imgproc.Resize(bg, t.cfg.InputSize, t.cfg.InputSize)
	st := &bgState{ema: make([]float64, len(small.Pix)), frames: 1000}
	for i, p := range small.Pix {
		st.ema[i] = float64(p)
	}
	t.mu.Lock()
	t.bg[streamID] = st
	t.mu.Unlock()
}

// Detect implements Detector. The per-pixel stages — resize, foreground
// difference, background EMA, blur, binarize — shard over the par
// worker pool; component labeling and classification are a tiny
// fraction of the work and stay serial. Scratch images come from the
// image pool, so a warm detector allocates only its detections.
func (t *TinyGrid) Detect(f *frame.Frame) []Detection {
	size := t.cfg.InputSize
	small := imgproc.GetGray(size, size)
	defer small.Release()
	imgproc.ResizeInto(imgproc.FromFrame(f), small)

	t.mu.Lock()
	st, ok := t.bg[f.StreamID]
	if !ok {
		st = &bgState{ema: make([]float64, len(small.Pix))}
		for i, p := range small.Pix {
			st.ema[i] = float64(p)
		}
		t.bg[f.StreamID] = st
	}
	t.mu.Unlock()

	// Foreground difference against the running background, fused with
	// the background EMA update: both walk the same pixels and each
	// index touches only its own diff/ema slots, so the fused loop
	// shards cleanly. Warmup adapts faster so a cold detector converges.
	alpha := t.cfg.BGAlpha
	if st.frames < 50 {
		alpha = 0.15
	}
	st.frames++
	diff := imgproc.GetGray(size, size)
	defer diff.Release()
	par.For(len(small.Pix), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := float64(small.Pix[i])
			d := p - st.ema[i]
			if d < 0 {
				d = -d
			}
			if d > 255 {
				d = 255
			}
			diff.Pix[i] = uint8(d)
			st.ema[i] += alpha * (p - st.ema[i])
		}
	})

	blur := imgproc.GetGray(size, size)
	imgproc.BoxBlur3Into(diff, blur)
	mask := imgproc.GetGray(size, size)
	imgproc.BinarizeInto(blur, t.cfg.DiffThresh, mask)
	blur.Release()
	defer mask.Release()
	comps := imgproc.ConnectedComponents(mask, t.cfg.MinArea)

	dets := make([]Detection, 0, len(comps))
	cellCount := make(map[int]int)
	tab := imgproc.Integral(diff)
	for _, c := range comps {
		d, ok := t.classify(c, diff, tab, size)
		if !ok {
			continue
		}
		// Grid-cell cap: at most MaxBoxesPerCell detections whose box
		// center falls in one of the 13×13 cells.
		cx := (c.Rect.X + c.Rect.W/2) * GridSize / size
		cy := (c.Rect.Y + c.Rect.H/2) * GridSize / size
		cell := cy*GridSize + cx
		if cellCount[cell] >= MaxBoxesPerCell {
			continue
		}
		cellCount[cell]++
		dets = append(dets, d)
	}
	return dets
}

// classify maps a foreground component to a class by its geometry, and
// scores confidence from foreground contrast. Edge-touching (partially
// visible) components are penalized: this is the mechanism that
// reproduces T-YOLO's partial-appearance false negatives.
func (t *TinyGrid) classify(c imgproc.Component, diff *imgproc.Gray, tab []uint64, size int) (Detection, bool) {
	r := c.Rect
	aspect := float64(r.W) / float64(r.H)
	fill := float64(c.Pixels) / float64(r.Area())

	meanDiff := float64(imgproc.BoxSum(diff, tab, r)) / float64(r.Area())
	conf := meanDiff / t.cfg.ConfNorm
	if conf > 1 {
		conf = 1
	}
	// Low fill = fragmented blob; damp confidence.
	conf *= 0.5 + 0.5*fill

	touchesEdge := r.X == 0 || r.Y == 0 || r.X+r.W >= size || r.Y+r.H >= size

	var class frame.Class
	switch {
	case aspect >= 3.4:
		class = frame.ClassBus
	case aspect >= 1.15:
		if r.H >= size/16 {
			class = frame.ClassCar
		} else {
			class = frame.ClassDog
		}
	case aspect <= 0.8:
		if r.H >= size/24 {
			class = frame.ClassPerson
		} else {
			class = frame.ClassCat
		}
	default:
		// Near-square blobs: small ones are animals, large ones default
		// to car (front/back views).
		if r.Area() >= size*size/64 {
			class = frame.ClassCar
		} else {
			class = frame.ClassDog
		}
	}

	if touchesEdge {
		// A partially visible object has distorted geometry; a generic
		// small model loses confidence on it. A wide object that has
		// lost its distinguishing aspect ratio (e.g. a car 40% visible
		// looks square) is additionally likely misclassified, which the
		// geometry rules above already capture.
		conf *= 0.45
	}
	if conf < 0.05 {
		return Detection{}, false
	}
	return Detection{Box: r, Class: class, Conf: conf}, true
}

// OracleConfig tunes the reference-model oracle.
type OracleConfig struct {
	// MissRate is the deterministic pseudo-random fraction of true
	// objects the reference model fails to report (YOLOv2 is good but
	// not perfect).
	MissRate float64
	// MinVisible is the minimum visible fraction the reference model can
	// still detect. The paper notes YOLOv2 detects partial vehicles that
	// T-YOLO misses, so this is small.
	MinVisible float64
}

// DefaultOracleConfig returns the reference-model configuration used
// across the evaluation.
func DefaultOracleConfig() OracleConfig {
	return OracleConfig{MissRate: 0.005, MinVisible: 0.15}
}

// Oracle is the reference-model stand-in. It requires frames carrying
// ground truth.
type Oracle struct {
	cfg OracleConfig
}

// NewOracle creates an oracle detector.
func NewOracle(cfg OracleConfig) *Oracle { return &Oracle{cfg: cfg} }

// Detect implements Detector from ground truth, with a deterministic
// per-object miss rate.
func (o *Oracle) Detect(f *frame.Frame) []Detection {
	if f.Truth == nil {
		return nil
	}
	dets := make([]Detection, 0, len(f.Truth.Boxes))
	for i, b := range f.Truth.Boxes {
		if b.Visible < o.cfg.MinVisible {
			continue
		}
		if o.cfg.MissRate > 0 && hash01(f.StreamID, f.Seq, i) < o.cfg.MissRate {
			continue
		}
		dets = append(dets, Detection{
			Box:   imgproc.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H},
			Class: b.Class,
			Conf:  0.99,
		})
	}
	return dets
}

// Compressed is the §5.5 remedy for T-YOLO's error rate: a deeply
// compressed high-precision model (pruning + sparsity, as in EIE) that
// keeps near-reference accuracy at roughly T-YOLO's speed. It is a
// drop-in replacement for TinyGrid in the third filter stage; its service
// time is charged as the T-YOLO model, so swapping it trades nothing but
// the (large) training/compression effort the paper assumes.
//
// Like the reference model it is oracle-backed (detection quality of the
// compressed network is not what the reproduction evaluates); unlike the
// reference it retains a slightly higher miss rate and loses objects
// below a larger visibility floor.
type Compressed struct {
	cfg OracleConfig
}

// NewCompressed returns the compressed detector with its calibrated
// error profile (≈3× the reference model's miss rate, visibility floor
// 0.25 vs the reference's 0.15).
func NewCompressed() *Compressed {
	return &Compressed{cfg: OracleConfig{MissRate: 0.015, MinVisible: 0.25}}
}

// Detect implements Detector.
func (c *Compressed) Detect(f *frame.Frame) []Detection {
	if f.Truth == nil {
		return nil
	}
	dets := make([]Detection, 0, len(f.Truth.Boxes))
	for i, b := range f.Truth.Boxes {
		if b.Visible < c.cfg.MinVisible {
			continue
		}
		// Salt the hash so the compressed model's misses do not coincide
		// with the reference model's.
		if hash01(f.StreamID^0x7c, f.Seq, i) < c.cfg.MissRate {
			continue
		}
		dets = append(dets, Detection{
			Box:   imgproc.Rect{X: b.X, Y: b.Y, W: b.W, H: b.H},
			Class: b.Class,
			Conf:  0.9,
		})
	}
	return dets
}

// hash01 maps (stream, seq, idx) to a deterministic value in [0, 1).
func hash01(stream int, seq int64, idx int) float64 {
	h := fnv.New64a()
	var buf [20]byte
	buf[0] = byte(stream)
	buf[1] = byte(stream >> 8)
	for i := 0; i < 8; i++ {
		buf[2+i] = byte(seq >> (8 * i))
	}
	buf[10] = byte(idx)
	h.Write(buf[:])
	return float64(h.Sum64()%1_000_000) / 1_000_000
}
