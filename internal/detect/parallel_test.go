package detect

import (
	"math/rand"
	"testing"

	"ffsva/internal/frame"
	"ffsva/internal/par"
)

// synthFrames renders a deterministic little scene: textured background
// with a bright block moving across it, enough to light up the
// difference grid and produce detections.
func synthFrames(n int) []*frame.Frame {
	rng := rand.New(rand.NewSource(31))
	bg := make([]uint8, 320*240)
	for i := range bg {
		bg[i] = uint8(90 + rng.Intn(20))
	}
	frames := make([]*frame.Frame, n)
	for k := 0; k < n; k++ {
		f := frame.New(320, 240)
		copy(f.Pix, bg)
		x0 := 20 + k*6
		for y := 100; y < 160; y++ {
			for x := x0; x < x0+48 && x < 320; x++ {
				f.Set(x, y, 230)
			}
		}
		f.StreamID = 1
		f.Seq = int64(k)
		frames[k] = f
	}
	return frames
}

// TestTinyGridSerialParallelIdentical runs the same frame sequence
// through two fresh detectors — one with the pool pinned to a single
// worker, one with a wide pool — and requires identical detections
// frame by frame. The detector's parallel pieces (resize, the fused
// diff+EMA update, blur, binarize) all shard disjoint regions or use
// integer chunked reductions, so state (the EMA background) evolves
// identically and every box, class, and confidence must match.
func TestTinyGridSerialParallelIdentical(t *testing.T) {
	frames := synthFrames(40)

	run := func(workers int) [][]Detection {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		tg := NewTinyGrid(DefaultTinyGridConfig())
		out := make([][]Detection, len(frames))
		for i, f := range frames {
			dets := tg.Detect(f)
			out[i] = append([]Detection(nil), dets...)
		}
		return out
	}

	serial := run(1)
	parallel := run(8)

	sawDetection := false
	for i := range frames {
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("frame %d: %d detections serial, %d parallel", i, len(serial[i]), len(parallel[i]))
		}
		for j := range serial[i] {
			if serial[i][j] != parallel[i][j] {
				t.Fatalf("frame %d detection %d: serial %+v parallel %+v",
					i, j, serial[i][j], parallel[i][j])
			}
			sawDetection = true
		}
	}
	if !sawDetection {
		t.Fatal("scene produced no detections; the equivalence check was vacuous")
	}
}
