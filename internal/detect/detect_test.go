package detect

import (
	"testing"

	"ffsva/internal/frame"
	"ffsva/internal/vidgen"
)

func TestOracleMatchesTruth(t *testing.T) {
	s := vidgen.New(vidgen.Small(1, frame.ClassCar, 0.3))
	o := NewOracle(OracleConfig{MissRate: 0, MinVisible: 0})
	for i := 0; i < 2000; i++ {
		f := s.Next()
		dets := o.Detect(f)
		if got, want := Count(dets, frame.ClassCar, 0.2), f.Truth.TargetCount(frame.ClassCar); got != want {
			t.Fatalf("frame %d: oracle count %d, truth %d", i, got, want)
		}
	}
}

func TestOracleMissRateDeterministic(t *testing.T) {
	s := vidgen.New(vidgen.Small(2, frame.ClassCar, 0.5))
	frames := vidgen.Generate(s, 500)
	o := NewOracle(OracleConfig{MissRate: 0.2, MinVisible: 0.01})
	count := func() int {
		n := 0
		for _, f := range frames {
			n += len(o.Detect(f))
		}
		return n
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("oracle nondeterministic: %d vs %d", a, b)
	}
	// With a 20% miss rate, detections must be visibly fewer than truth.
	truth := 0
	for _, f := range frames {
		truth += len(f.Truth.Boxes)
	}
	if a >= truth || truth == 0 {
		t.Fatalf("miss rate had no effect: det=%d truth=%d", a, truth)
	}
}

func TestOracleSkipsInvisible(t *testing.T) {
	f := frame.New(100, 100)
	f.Truth = &frame.Annotation{Boxes: []frame.Box{
		{X: 0, Y: 0, W: 10, H: 10, Class: frame.ClassCar, Visible: 0.05},
		{X: 50, Y: 50, W: 10, H: 10, Class: frame.ClassCar, Visible: 1.0},
	}}
	o := NewOracle(DefaultOracleConfig())
	dets := o.Detect(f)
	if len(dets) != 1 {
		t.Fatalf("got %d detections, want 1 (invisible box skipped)", len(dets))
	}
}

func TestOracleNilTruth(t *testing.T) {
	o := NewOracle(DefaultOracleConfig())
	if dets := o.Detect(frame.New(10, 10)); dets != nil {
		t.Fatalf("nil-truth frame produced detections: %v", dets)
	}
}

// runTinyGrid feeds n frames through the detector and compares counted
// targets against ground truth per frame, returning (framesAgreeing,
// framesWithTargets, totalDetected, totalTruth) over frames where truth
// has fully visible targets.
func tinyGridAgreement(t *testing.T, cfg vidgen.Config, n int, confThresh float64) (agree, total int) {
	t.Helper()
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	tg.SetBackground(cfg.StreamID, s.Background())
	for i := 0; i < n; i++ {
		f := s.Next()
		dets := tg.Detect(f)
		// Only score frames where every target is solidly visible; edge
		// partials are a designed weakness tested separately.
		truthN := 0
		allVisible := true
		for _, b := range f.Truth.Boxes {
			if b.Class == cfg.Target {
				truthN++
				if b.Visible < 0.95 {
					allVisible = false
				}
			}
		}
		if truthN == 0 || !allVisible {
			continue
		}
		total++
		got := Count(dets, cfg.Target, confThresh)
		if got >= truthN {
			agree++
		}
	}
	return agree, total
}

func TestTinyGridDetectsVisibleCars(t *testing.T) {
	cfg := vidgen.Small(3, frame.ClassCar, 0.3)
	cfg.DistractorProb = 0
	cfg.MaxObjects = 1
	agree, total := tinyGridAgreement(t, cfg, 3000, 0.2)
	if total < 100 {
		t.Fatalf("too few scorable frames: %d", total)
	}
	if rate := float64(agree) / float64(total); rate < 0.85 {
		t.Fatalf("fully visible car detection rate = %.2f (%d/%d), want >= 0.85", rate, agree, total)
	}
}

func TestTinyGridMissesEdgePartials(t *testing.T) {
	cfg := vidgen.Small(4, frame.ClassCar, 0.3)
	cfg.StopProb = 1.0 // cars always stop partially visible at the edge
	cfg.DistractorProb = 0
	cfg.MaxObjects = 1
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	tg.SetBackground(cfg.StreamID, s.Background())
	partialFrames, partialDetected := 0, 0
	for i := 0; i < 4000; i++ {
		f := s.Next()
		dets := tg.Detect(f)
		isPartial := false
		for _, b := range f.Truth.Boxes {
			if b.Class == frame.ClassCar && b.Visible < 0.6 {
				isPartial = true
			}
		}
		if !isPartial {
			continue
		}
		partialFrames++
		if Count(dets, frame.ClassCar, 0.2) > 0 {
			partialDetected++
		}
	}
	if partialFrames < 50 {
		t.Fatalf("too few partial frames: %d", partialFrames)
	}
	if rate := float64(partialDetected) / float64(partialFrames); rate > 0.5 {
		t.Fatalf("partial cars detected at rate %.2f, want <= 0.5 (T-YOLO weakness)", rate)
	}
}

func TestTinyGridUndercountsCrowds(t *testing.T) {
	cfg := vidgen.Small(5, frame.ClassPerson, 0.6)
	cfg.CrowdProb = 1.0
	cfg.CrowdSize = 8
	cfg.DistractorProb = 0
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	tg.SetBackground(cfg.StreamID, s.Background())
	denseFrames, undercounted := 0, 0
	for i := 0; i < 4000; i++ {
		f := s.Next()
		dets := tg.Detect(f)
		truthN := f.Truth.TargetCount(frame.ClassPerson)
		if truthN < 4 {
			continue
		}
		denseFrames++
		if Count(dets, frame.ClassPerson, 0.2) < truthN {
			undercounted++
		}
	}
	if denseFrames < 50 {
		t.Fatalf("too few dense frames: %d", denseFrames)
	}
	if rate := float64(undercounted) / float64(denseFrames); rate < 0.5 {
		t.Fatalf("dense crowds undercounted at rate %.2f, want >= 0.5 (T-YOLO weakness)", rate)
	}
}

func TestTinyGridQuietOnBackground(t *testing.T) {
	cfg := vidgen.Small(6, frame.ClassCar, 0.1)
	cfg.DistractorProb = 0
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	tg.SetBackground(cfg.StreamID, s.Background())
	bgFrames, falsePos := 0, 0
	for i := 0; i < 3000; i++ {
		f := s.Next()
		dets := tg.Detect(f)
		if len(f.Truth.Boxes) != 0 {
			continue
		}
		bgFrames++
		if Count(dets, frame.ClassCar, 0.2) > 0 {
			falsePos++
		}
	}
	if bgFrames < 500 {
		t.Fatalf("too few background frames: %d", bgFrames)
	}
	if rate := float64(falsePos) / float64(bgFrames); rate > 0.05 {
		t.Fatalf("background false-positive rate %.3f, want <= 0.05", rate)
	}
}

func TestTinyGridColdStartConverges(t *testing.T) {
	// Without SetBackground the detector must self-converge via its
	// warmup EMA and then stay quiet on background.
	cfg := vidgen.Small(7, frame.ClassCar, 0.05)
	cfg.DistractorProb = 0
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	for i := 0; i < 100; i++ { // warmup
		tg.Detect(s.Next())
	}
	bgFrames, falsePos := 0, 0
	for i := 0; i < 1000; i++ {
		f := s.Next()
		dets := tg.Detect(f)
		if len(f.Truth.Boxes) != 0 {
			continue
		}
		bgFrames++
		if len(dets) > 0 {
			falsePos++
		}
	}
	if bgFrames == 0 {
		t.Fatal("no background frames")
	}
	if rate := float64(falsePos) / float64(bgFrames); rate > 0.1 {
		t.Fatalf("cold-start background false-positive rate %.3f", rate)
	}
}

func TestCountThreshold(t *testing.T) {
	dets := []Detection{
		{Class: frame.ClassCar, Conf: 0.9},
		{Class: frame.ClassCar, Conf: 0.1},
		{Class: frame.ClassPerson, Conf: 0.9},
	}
	if got := Count(dets, frame.ClassCar, 0.2); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	if got := Count(dets, frame.ClassCar, 0.05); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
	if got := Count(dets, frame.ClassBus, 0.05); got != 0 {
		t.Fatalf("Count = %d, want 0", got)
	}
}

func TestGridCellCap(t *testing.T) {
	// Construct a frame whose truth-independent foreground creates many
	// blobs in one cell region is hard to force deterministically via
	// vidgen; instead verify the cap constant is honored by Detect's
	// output: no more than MaxBoxesPerCell detections share a cell.
	cfg := vidgen.Small(8, frame.ClassPerson, 0.8)
	cfg.CrowdProb = 1.0
	cfg.CrowdSize = 12
	s := vidgen.New(cfg)
	tg := NewTinyGrid(DefaultTinyGridConfig())
	tg.SetBackground(cfg.StreamID, s.Background())
	size := DefaultTinyGridConfig().InputSize
	for i := 0; i < 1500; i++ {
		dets := tg.Detect(s.Next())
		perCell := map[int]int{}
		for _, d := range dets {
			cx := (d.Box.X + d.Box.W/2) * GridSize / size
			cy := (d.Box.Y + d.Box.H/2) * GridSize / size
			perCell[cy*GridSize+cx]++
		}
		for cell, n := range perCell {
			if n > MaxBoxesPerCell {
				t.Fatalf("frame %d: cell %d holds %d boxes > cap %d", i, cell, n, MaxBoxesPerCell)
			}
		}
	}
}

func TestCompressedNearReferenceAccuracy(t *testing.T) {
	cfg := vidgen.Small(9, frame.ClassPerson, 0.6)
	cfg.CrowdProb = 1.0
	s := vidgen.New(cfg)
	comp := NewCompressed()
	ref := NewOracle(DefaultOracleConfig())
	agree, denseAgree, dense, total := 0, 0, 0, 0
	for i := 0; i < 2000; i++ {
		f := s.Next()
		truthN := f.Truth.TargetCount(frame.ClassPerson)
		if truthN == 0 {
			continue
		}
		total++
		got := Count(comp.Detect(f), frame.ClassPerson, 0.2)
		want := Count(ref.Detect(f), frame.ClassPerson, 0.2)
		if got >= want-1 { // compressed may miss slightly more
			agree++
		}
		if truthN >= 4 {
			dense++
			if got >= truthN-1 {
				denseAgree++
			}
		}
	}
	if total < 200 || dense < 50 {
		t.Fatalf("degenerate stream: total=%d dense=%d", total, dense)
	}
	// Near-reference counting even on dense crowds — the property
	// TinyGrid lacks (see TestTinyGridUndercountsCrowds).
	if rate := float64(denseAgree) / float64(dense); rate < 0.85 {
		t.Fatalf("compressed dense-crowd agreement %.2f, want >= 0.85", rate)
	}
	if rate := float64(agree) / float64(total); rate < 0.9 {
		t.Fatalf("compressed vs reference agreement %.2f", rate)
	}
}

func TestCompressedDeterministic(t *testing.T) {
	s := vidgen.New(vidgen.Small(10, frame.ClassCar, 0.5))
	frames := vidgen.Generate(s, 300)
	c := NewCompressed()
	count := func() int {
		n := 0
		for _, f := range frames {
			n += len(c.Detect(f))
		}
		return n
	}
	if a, b := count(), count(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestCompressedNilTruth(t *testing.T) {
	if dets := NewCompressed().Detect(frame.New(8, 8)); dets != nil {
		t.Fatalf("nil-truth frame produced detections: %v", dets)
	}
}
